#include "net/metrics.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace hirep::net {

namespace {

// Process-wide mirrors of the per-transport envelope counters, one
// registry counter per (envelope type, outcome).  Per-instance Counters
// stay authoritative (the transport's conservation invariant and
// DeliveryReceipts read them); the registry view is what BENCH_*.json
// exports.  References are resolved once — registry lookups take a mutex,
// updates are relaxed atomics.
struct EnvelopeRegistryCells {
  static constexpr std::size_t kN =
      static_cast<std::size_t>(EnvelopeType::kCount);
  std::array<obs::Counter*, kN> sent{};
  std::array<obs::Counter*, kN> delivered{};
  std::array<obs::Counter*, kN> dropped{};
  std::array<obs::Counter*, kN> duplicated{};
  std::array<obs::Counter*, kN> hop_messages{};
  std::array<obs::Counter*, kN> suppressed{};
  std::array<obs::Counter*, kN> bytes_sent{};
  std::array<obs::Counter*, kN> bytes_delivered{};
  std::array<obs::Counter*, kN> bytes_dropped{};
};

const EnvelopeRegistryCells& envelope_cells() {
  static const EnvelopeRegistryCells cells = [] {
    EnvelopeRegistryCells c;
    auto& reg = obs::Registry::global();
    for (std::size_t i = 0; i < EnvelopeRegistryCells::kN; ++i) {
      const std::string base =
          std::string("net.envelope.") + to_string(static_cast<EnvelopeType>(i));
      c.sent[i] = &reg.counter(base + ".sent");
      c.delivered[i] = &reg.counter(base + ".delivered");
      c.dropped[i] = &reg.counter(base + ".dropped");
      c.duplicated[i] = &reg.counter(base + ".duplicated");
      c.hop_messages[i] = &reg.counter(base + ".hop_messages");
      c.suppressed[i] = &reg.counter(base + ".suppressed");
      c.bytes_sent[i] = &reg.counter(base + ".payload_bytes_sent");
      c.bytes_delivered[i] = &reg.counter(base + ".payload_bytes_delivered");
      c.bytes_dropped[i] = &reg.counter(base + ".payload_bytes_dropped");
    }
    return c;
  }();
  return cells;
}

}  // namespace

const char* to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kQuery: return "query";
    case MessageKind::kTrustRequest: return "trust_request";
    case MessageKind::kTrustResponse: return "trust_response";
    case MessageKind::kReport: return "report";
    case MessageKind::kAgentDiscovery: return "agent_discovery";
    case MessageKind::kOnionRelay: return "onion_relay";
    case MessageKind::kKeyExchange: return "key_exchange";
    case MessageKind::kControl: return "control";
    case MessageKind::kCount: break;
  }
  return "?";
}

const char* to_string(EnvelopeType type) noexcept {
  switch (type) {
    case EnvelopeType::kTrustRequest: return "trust_request";
    case EnvelopeType::kTrustResponse: return "trust_response";
    case EnvelopeType::kReport: return "report";
    case EnvelopeType::kAgentListRequest: return "agent_list_request";
    case EnvelopeType::kAgentListReply: return "agent_list_reply";
    case EnvelopeType::kKeyRotation: return "key_rotation";
    case EnvelopeType::kKeyExchange: return "key_exchange";
    case EnvelopeType::kProbe: return "probe";
    case EnvelopeType::kVotePoll: return "vote_poll";
    case EnvelopeType::kVoteReturn: return "vote_return";
    case EnvelopeType::kCount: break;
  }
  return "?";
}

MessageKind kind_of(EnvelopeType type) noexcept {
  switch (type) {
    case EnvelopeType::kTrustRequest: return MessageKind::kTrustRequest;
    case EnvelopeType::kTrustResponse: return MessageKind::kTrustResponse;
    case EnvelopeType::kReport: return MessageKind::kReport;
    case EnvelopeType::kAgentListRequest: return MessageKind::kAgentDiscovery;
    case EnvelopeType::kAgentListReply: return MessageKind::kAgentDiscovery;
    case EnvelopeType::kKeyRotation: return MessageKind::kControl;
    case EnvelopeType::kKeyExchange: return MessageKind::kKeyExchange;
    case EnvelopeType::kProbe: return MessageKind::kControl;
    case EnvelopeType::kVotePoll: return MessageKind::kTrustRequest;
    case EnvelopeType::kVoteReturn: return MessageKind::kTrustResponse;
    case EnvelopeType::kCount: break;
  }
  return MessageKind::kControl;
}

void EnvelopeMetrics::count_sent(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].sent;
  if constexpr (obs::kEnabled) {
    envelope_cells().sent[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_delivered(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].delivered;
  if constexpr (obs::kEnabled) {
    envelope_cells().delivered[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_dropped(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].dropped;
  if constexpr (obs::kEnabled) {
    envelope_cells().dropped[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_duplicated(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].duplicated;
  if constexpr (obs::kEnabled) {
    envelope_cells().duplicated[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_suppressed(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].suppressed;
  if constexpr (obs::kEnabled) {
    envelope_cells().suppressed[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_hops(EnvelopeType type,
                                 std::uint64_t messages) noexcept {
  counts_[static_cast<std::size_t>(type)].hop_messages += messages;
  if constexpr (obs::kEnabled) {
    envelope_cells().hop_messages[static_cast<std::size_t>(type)]->add(messages);
  }
}

void EnvelopeMetrics::add(EnvelopeType type, const Counters& delta) noexcept {
  const std::size_t i = static_cast<std::size_t>(type);
  Counters& c = counts_[i];
  c.sent += delta.sent;
  c.delivered += delta.delivered;
  c.dropped += delta.dropped;
  c.duplicated += delta.duplicated;
  c.hop_messages += delta.hop_messages;
  c.suppressed += delta.suppressed;
  c.payload_bytes_sent += delta.payload_bytes_sent;
  c.payload_bytes_delivered += delta.payload_bytes_delivered;
  c.payload_bytes_dropped += delta.payload_bytes_dropped;
  if constexpr (obs::kEnabled) {
    const auto& cells = envelope_cells();
    if (delta.sent) cells.sent[i]->add(delta.sent);
    if (delta.delivered) cells.delivered[i]->add(delta.delivered);
    if (delta.dropped) cells.dropped[i]->add(delta.dropped);
    if (delta.duplicated) cells.duplicated[i]->add(delta.duplicated);
    if (delta.hop_messages) cells.hop_messages[i]->add(delta.hop_messages);
    if (delta.suppressed) cells.suppressed[i]->add(delta.suppressed);
    if (delta.payload_bytes_sent) {
      cells.bytes_sent[i]->add(delta.payload_bytes_sent);
    }
    if (delta.payload_bytes_delivered) {
      cells.bytes_delivered[i]->add(delta.payload_bytes_delivered);
    }
    if (delta.payload_bytes_dropped) {
      cells.bytes_dropped[i]->add(delta.payload_bytes_dropped);
    }
  }
}

void EnvelopeMetrics::absorb(const EnvelopeMetrics& other) noexcept {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].sent += other.counts_[i].sent;
    counts_[i].delivered += other.counts_[i].delivered;
    counts_[i].dropped += other.counts_[i].dropped;
    counts_[i].duplicated += other.counts_[i].duplicated;
    counts_[i].hop_messages += other.counts_[i].hop_messages;
    counts_[i].suppressed += other.counts_[i].suppressed;
    counts_[i].payload_bytes_sent += other.counts_[i].payload_bytes_sent;
    counts_[i].payload_bytes_delivered +=
        other.counts_[i].payload_bytes_delivered;
    counts_[i].payload_bytes_dropped += other.counts_[i].payload_bytes_dropped;
  }
}

void EnvelopeMetrics::reset() noexcept { counts_.fill(Counters{}); }

const EnvelopeMetrics::Counters& EnvelopeMetrics::of(
    EnvelopeType type) const noexcept {
  return counts_[static_cast<std::size_t>(type)];
}

std::uint64_t EnvelopeMetrics::total_sent() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.sent;
  return sum;
}

std::uint64_t EnvelopeMetrics::total_delivered() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.delivered;
  return sum;
}

std::uint64_t EnvelopeMetrics::total_dropped() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.dropped;
  return sum;
}

std::string EnvelopeMetrics::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const Counters& c = counts_[i];
    if (c.sent == 0 && c.dropped == 0) continue;
    out << to_string(static_cast<EnvelopeType>(i)) << "={sent=" << c.sent
        << " delivered=" << c.delivered << " dropped=" << c.dropped
        << " dup=" << c.duplicated << " suppressed=" << c.suppressed
        << " hops=" << c.hop_messages
        << " bytes=" << c.payload_bytes_sent << '/'
        << c.payload_bytes_delivered << '/' << c.payload_bytes_dropped
        << "} ";
  }
  out << "total_sent=" << total_sent() << " total_delivered="
      << total_delivered() << " total_dropped=" << total_dropped();
  return out.str();
}

namespace {

// Stable per-thread shard choice, shared by every TrafficMetrics instance.
std::size_t traffic_shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

TrafficMetrics::TrafficMetrics() : shards_(new Shard[kShards]) {}

TrafficMetrics::TrafficMetrics(const TrafficMetrics& other)
    : shards_(new Shard[kShards]) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(MessageKind::kCount);
       ++k) {
    shards_[0].counts[k].store(other.of(static_cast<MessageKind>(k)),
                               std::memory_order_relaxed);
  }
}

TrafficMetrics& TrafficMetrics::operator=(const TrafficMetrics& other) {
  if (this == &other) return *this;
  reset();
  for (std::size_t k = 0; k < static_cast<std::size_t>(MessageKind::kCount);
       ++k) {
    shards_[0].counts[k].store(other.of(static_cast<MessageKind>(k)),
                               std::memory_order_relaxed);
  }
  return *this;
}

TrafficMetrics::Shard& TrafficMetrics::shard() noexcept {
  return shards_[traffic_shard_slot() & (kShards - 1)];
}

void TrafficMetrics::count(MessageKind kind, std::uint64_t messages) noexcept {
  shard().counts[static_cast<std::size_t>(kind)].fetch_add(
      messages, std::memory_order_relaxed);
}

void TrafficMetrics::reset() noexcept {
  for (std::size_t s = 0; s < kShards; ++s) {
    for (auto& c : shards_[s].counts) c.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t TrafficMetrics::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < static_cast<std::size_t>(MessageKind::kCount);
       ++k) {
    sum += of(static_cast<MessageKind>(k));
  }
  return sum;
}

std::uint64_t TrafficMetrics::of(MessageKind kind) const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    sum += shards_[s]
               .counts[static_cast<std::size_t>(kind)]
               .load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t TrafficMetrics::trust_traffic() const noexcept {
  return total() - of(MessageKind::kQuery);
}

std::string TrafficMetrics::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < static_cast<std::size_t>(MessageKind::kCount);
       ++i) {
    const std::uint64_t v = of(static_cast<MessageKind>(i));
    if (v == 0) continue;
    out << to_string(static_cast<MessageKind>(i)) << '=' << v << ' ';
  }
  out << "total=" << total();
  return out.str();
}

}  // namespace hirep::net
