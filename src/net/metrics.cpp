#include "net/metrics.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace hirep::net {

namespace {

// Process-wide mirrors of the per-transport envelope counters, one
// registry counter per (envelope type, outcome).  Per-instance Counters
// stay authoritative (the transport's conservation invariant and
// DeliveryReceipts read them); the registry view is what BENCH_*.json
// exports.  References are resolved once — registry lookups take a mutex,
// updates are relaxed atomics.
struct EnvelopeRegistryCells {
  static constexpr std::size_t kN =
      static_cast<std::size_t>(EnvelopeType::kCount);
  std::array<obs::Counter*, kN> sent{};
  std::array<obs::Counter*, kN> delivered{};
  std::array<obs::Counter*, kN> dropped{};
  std::array<obs::Counter*, kN> duplicated{};
  std::array<obs::Counter*, kN> hop_messages{};
};

const EnvelopeRegistryCells& envelope_cells() {
  static const EnvelopeRegistryCells cells = [] {
    EnvelopeRegistryCells c;
    auto& reg = obs::Registry::global();
    for (std::size_t i = 0; i < EnvelopeRegistryCells::kN; ++i) {
      const std::string base =
          std::string("net.envelope.") + to_string(static_cast<EnvelopeType>(i));
      c.sent[i] = &reg.counter(base + ".sent");
      c.delivered[i] = &reg.counter(base + ".delivered");
      c.dropped[i] = &reg.counter(base + ".dropped");
      c.duplicated[i] = &reg.counter(base + ".duplicated");
      c.hop_messages[i] = &reg.counter(base + ".hop_messages");
    }
    return c;
  }();
  return cells;
}

}  // namespace

const char* to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kQuery: return "query";
    case MessageKind::kTrustRequest: return "trust_request";
    case MessageKind::kTrustResponse: return "trust_response";
    case MessageKind::kReport: return "report";
    case MessageKind::kAgentDiscovery: return "agent_discovery";
    case MessageKind::kOnionRelay: return "onion_relay";
    case MessageKind::kKeyExchange: return "key_exchange";
    case MessageKind::kControl: return "control";
    case MessageKind::kCount: break;
  }
  return "?";
}

const char* to_string(EnvelopeType type) noexcept {
  switch (type) {
    case EnvelopeType::kTrustRequest: return "trust_request";
    case EnvelopeType::kTrustResponse: return "trust_response";
    case EnvelopeType::kReport: return "report";
    case EnvelopeType::kAgentListRequest: return "agent_list_request";
    case EnvelopeType::kAgentListReply: return "agent_list_reply";
    case EnvelopeType::kKeyRotation: return "key_rotation";
    case EnvelopeType::kKeyExchange: return "key_exchange";
    case EnvelopeType::kProbe: return "probe";
    case EnvelopeType::kVotePoll: return "vote_poll";
    case EnvelopeType::kVoteReturn: return "vote_return";
    case EnvelopeType::kCount: break;
  }
  return "?";
}

MessageKind kind_of(EnvelopeType type) noexcept {
  switch (type) {
    case EnvelopeType::kTrustRequest: return MessageKind::kTrustRequest;
    case EnvelopeType::kTrustResponse: return MessageKind::kTrustResponse;
    case EnvelopeType::kReport: return MessageKind::kReport;
    case EnvelopeType::kAgentListRequest: return MessageKind::kAgentDiscovery;
    case EnvelopeType::kAgentListReply: return MessageKind::kAgentDiscovery;
    case EnvelopeType::kKeyRotation: return MessageKind::kControl;
    case EnvelopeType::kKeyExchange: return MessageKind::kKeyExchange;
    case EnvelopeType::kProbe: return MessageKind::kControl;
    case EnvelopeType::kVotePoll: return MessageKind::kTrustRequest;
    case EnvelopeType::kVoteReturn: return MessageKind::kTrustResponse;
    case EnvelopeType::kCount: break;
  }
  return MessageKind::kControl;
}

void EnvelopeMetrics::count_sent(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].sent;
  if constexpr (obs::kEnabled) {
    envelope_cells().sent[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_delivered(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].delivered;
  if constexpr (obs::kEnabled) {
    envelope_cells().delivered[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_dropped(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].dropped;
  if constexpr (obs::kEnabled) {
    envelope_cells().dropped[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_duplicated(EnvelopeType type) noexcept {
  ++counts_[static_cast<std::size_t>(type)].duplicated;
  if constexpr (obs::kEnabled) {
    envelope_cells().duplicated[static_cast<std::size_t>(type)]->add();
  }
}

void EnvelopeMetrics::count_hops(EnvelopeType type,
                                 std::uint64_t messages) noexcept {
  counts_[static_cast<std::size_t>(type)].hop_messages += messages;
  if constexpr (obs::kEnabled) {
    envelope_cells().hop_messages[static_cast<std::size_t>(type)]->add(messages);
  }
}

void EnvelopeMetrics::reset() noexcept { counts_.fill(Counters{}); }

const EnvelopeMetrics::Counters& EnvelopeMetrics::of(
    EnvelopeType type) const noexcept {
  return counts_[static_cast<std::size_t>(type)];
}

std::uint64_t EnvelopeMetrics::total_sent() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.sent;
  return sum;
}

std::uint64_t EnvelopeMetrics::total_delivered() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.delivered;
  return sum;
}

std::uint64_t EnvelopeMetrics::total_dropped() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.dropped;
  return sum;
}

std::string EnvelopeMetrics::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const Counters& c = counts_[i];
    if (c.sent == 0 && c.dropped == 0) continue;
    out << to_string(static_cast<EnvelopeType>(i)) << "={sent=" << c.sent
        << " delivered=" << c.delivered << " dropped=" << c.dropped
        << " dup=" << c.duplicated << " hops=" << c.hop_messages << "} ";
  }
  out << "total_sent=" << total_sent() << " total_delivered="
      << total_delivered() << " total_dropped=" << total_dropped();
  return out.str();
}

void TrafficMetrics::count(MessageKind kind, std::uint64_t messages) noexcept {
  counts_[static_cast<std::size_t>(kind)] += messages;
}

void TrafficMetrics::reset() noexcept { counts_.fill(0); }

std::uint64_t TrafficMetrics::total() const noexcept {
  std::uint64_t sum = 0;
  for (auto c : counts_) sum += c;
  return sum;
}

std::uint64_t TrafficMetrics::of(MessageKind kind) const noexcept {
  return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t TrafficMetrics::trust_traffic() const noexcept {
  return total() - of(MessageKind::kQuery);
}

std::string TrafficMetrics::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out << to_string(static_cast<MessageKind>(i)) << '=' << counts_[i] << ' ';
  }
  out << "total=" << total();
  return out.str();
}

}  // namespace hirep::net
