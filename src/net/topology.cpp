#include "net/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace hirep::net {

Graph barabasi_albert(util::Rng& rng, std::size_t nodes,
                      std::size_t edges_per_node) {
  if (edges_per_node == 0) throw std::invalid_argument("edges_per_node == 0");
  if (nodes <= edges_per_node) {
    throw std::invalid_argument("need nodes > edges_per_node");
  }
  Graph g(nodes);
  // Seed clique of m+1 nodes so early attachments have enough targets.
  const std::size_t seed = edges_per_node + 1;
  // endpoint multiset: each edge contributes both endpoints; sampling from
  // it is sampling proportional to degree.
  std::vector<NodeIndex> endpoints;
  for (NodeIndex a = 0; a < seed; ++a) {
    for (NodeIndex b = a + 1; b < seed; ++b) {
      g.add_edge(a, b);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  for (NodeIndex v = static_cast<NodeIndex>(seed); v < nodes; ++v) {
    std::vector<NodeIndex> targets;
    while (targets.size() < edges_per_node) {
      const NodeIndex t = endpoints[rng.below(endpoints.size())];
      if (t != v &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeIndex t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph power_law(util::Rng& rng, std::size_t nodes, double average_degree) {
  if (average_degree < 2.0) average_degree = 2.0;
  // BA average degree ~= 2m; interpolate odd averages by flipping between
  // m and m+1 per node with the right probability.
  const auto m_lo = static_cast<std::size_t>(average_degree / 2.0);
  const double frac = average_degree / 2.0 - static_cast<double>(m_lo);
  const std::size_t m_hi = m_lo + 1;
  if (nodes <= m_hi + 1) throw std::invalid_argument("too few nodes");

  Graph g(nodes);
  const std::size_t seed = m_hi + 1;
  std::vector<NodeIndex> endpoints;
  for (NodeIndex a = 0; a < seed; ++a) {
    for (NodeIndex b = a + 1; b < seed; ++b) {
      g.add_edge(a, b);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  for (NodeIndex v = static_cast<NodeIndex>(seed); v < nodes; ++v) {
    const std::size_t m = rng.chance(frac) ? m_hi : m_lo;
    std::vector<NodeIndex> targets;
    std::size_t attempts = 0;
    while (targets.size() < m && attempts < 64 * m) {
      ++attempts;
      const NodeIndex t = endpoints[rng.below(endpoints.size())];
      if (t != v &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeIndex t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  ensure_connected(rng, g);
  return g;
}

Graph erdos_renyi(util::Rng& rng, std::size_t nodes, double average_degree) {
  if (nodes < 2) throw std::invalid_argument("need >= 2 nodes");
  Graph g(nodes);
  const double p =
      std::clamp(average_degree / static_cast<double>(nodes - 1), 0.0, 1.0);
  for (NodeIndex a = 0; a < nodes; ++a) {
    for (NodeIndex b = a + 1; b < nodes; ++b) {
      if (rng.chance(p)) g.add_edge(a, b);
    }
  }
  return g;
}

Graph ring_lattice(std::size_t nodes, std::size_t k) {
  if (nodes < 3) throw std::invalid_argument("need >= 3 nodes");
  Graph g(nodes);
  for (NodeIndex v = 0; v < nodes; ++v) {
    for (std::size_t j = 1; j <= k; ++j) {
      g.add_edge(v, static_cast<NodeIndex>((v + j) % nodes));
    }
  }
  return g;
}

void ensure_connected(util::Rng& rng, Graph& graph) {
  const std::size_t n = graph.node_count();
  if (n == 0) return;
  // Union components by linking a random member of each unseen component to
  // a random already-connected node.
  std::vector<bool> seen(n, false);
  std::vector<NodeIndex> stack{0};
  seen[0] = true;
  auto sweep = [&](NodeIndex start) {
    stack.clear();
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const NodeIndex cur = stack.back();
      stack.pop_back();
      for (NodeIndex next : graph.neighbors(cur)) {
        if (!seen[next]) {
          seen[next] = true;
          stack.push_back(next);
        }
      }
    }
  };
  sweep(0);
  for (NodeIndex v = 1; v < n; ++v) {
    if (!seen[v]) {
      NodeIndex anchor;
      do {
        anchor = static_cast<NodeIndex>(rng.below(n));
      } while (!seen[anchor]);
      graph.add_edge(v, anchor);
      sweep(v);
    }
  }
}

}  // namespace hirep::net
