#include "net/flood.hpp"

#include <deque>
#include <limits>
#include <queue>

namespace hirep::net {

std::vector<NodeIndex> FloodResult::parents_by_node(
    std::size_t node_count) const {
  std::vector<NodeIndex> by_node(node_count, kInvalidNode);
  for (std::size_t i = 0; i < reached.size(); ++i) {
    by_node[reached[i]] = parent[i];
  }
  return by_node;
}

FloodResult flood(Overlay& overlay, NodeIndex source, std::uint32_t ttl,
                  MessageKind kind) {
  const Graph& g = overlay.graph();
  FloodResult result;
  if (ttl == 0) return result;

  constexpr auto kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> depth(g.node_count(), kUnseen);
  depth[source] = 0;

  struct Pending {
    NodeIndex node;
    NodeIndex from;
    std::uint32_t hops;  // hops taken so far
  };
  std::deque<Pending> frontier;

  // Source transmits to every neighbor.
  for (NodeIndex nb : g.neighbors(source)) {
    ++result.messages;
    frontier.push_back({nb, source, 1});
  }

  while (!frontier.empty()) {
    const Pending p = frontier.front();
    frontier.pop_front();
    if (depth[p.node] != kUnseen) continue;  // duplicate copy: counted, dropped
    depth[p.node] = p.hops;
    result.reached.push_back(p.node);
    result.depth.push_back(p.hops);
    result.parent.push_back(p.from);
    if (p.hops >= ttl) continue;  // TTL exhausted: no forward
    for (NodeIndex nb : g.neighbors(p.node)) {
      if (nb == p.from) continue;
      ++result.messages;
      frontier.push_back({nb, p.node, p.hops + 1});
    }
  }
  overlay.count_send(kind, result.messages);
  return result;
}

FloodResult flood(Transport& transport, NodeIndex source, std::uint32_t ttl,
                  EnvelopeType type) {
  const Graph& g = transport.overlay().graph();
  FloodResult result;
  if (ttl == 0) return result;

  constexpr auto kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> depth(g.node_count(), kUnseen);
  depth[source] = 0;

  struct Pending {
    NodeIndex node;
    NodeIndex from;
    std::uint32_t hops;
  };
  std::deque<Pending> frontier;

  // Each edge transmission is one single-hop envelope under the policy; a
  // dropped copy never enters the frontier.
  const auto transmit = [&](NodeIndex from, NodeIndex to,
                            std::uint32_t hops) {
    const auto receipt = transport.send(type, from, {to});
    result.messages += receipt.messages;
    if (receipt.delivered) frontier.push_back({to, from, hops});
  };

  for (NodeIndex nb : g.neighbors(source)) transmit(source, nb, 1);

  while (!frontier.empty()) {
    const Pending p = frontier.front();
    frontier.pop_front();
    if (depth[p.node] != kUnseen) continue;
    depth[p.node] = p.hops;
    result.reached.push_back(p.node);
    result.depth.push_back(p.hops);
    result.parent.push_back(p.from);
    if (p.hops >= ttl) continue;
    for (NodeIndex nb : g.neighbors(p.node)) {
      if (nb == p.from) continue;
      transmit(p.node, nb, p.hops + 1);
    }
  }
  return result;
}

std::vector<TimedArrival> timed_flood(Overlay& overlay, NodeIndex source,
                                      std::uint32_t ttl, double start_ms,
                                      MessageKind kind) {
  const Graph& g = overlay.graph();
  std::vector<TimedArrival> arrivals;
  if (ttl == 0) return arrivals;

  constexpr auto kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> depth(g.node_count(), kUnseen);
  depth[source] = 0;

  struct Transmission {
    double handled_ms;  // completion of receiver-side handling
    NodeIndex node;
    NodeIndex from;
    std::uint32_t hops;
  };
  struct Later {
    bool operator()(const Transmission& a, const Transmission& b) const noexcept {
      return a.handled_ms > b.handled_ms;
    }
  };
  std::priority_queue<Transmission, std::vector<Transmission>, Later> queue;

  for (NodeIndex nb : g.neighbors(source)) {
    const double t = overlay.timed_send(start_ms, source, nb, kind);
    queue.push({t, nb, source, 1});
  }
  while (!queue.empty()) {
    const Transmission tx = queue.top();
    queue.pop();
    if (depth[tx.node] != kUnseen) continue;
    depth[tx.node] = tx.hops;
    arrivals.push_back({tx.node, tx.from, tx.hops, tx.handled_ms});
    if (tx.hops >= ttl) continue;
    for (NodeIndex nb : g.neighbors(tx.node)) {
      if (nb == tx.from) continue;
      const double t = overlay.timed_send(tx.handled_ms, tx.node, nb, kind);
      queue.push({t, nb, tx.node, tx.hops + 1});
    }
  }
  return arrivals;
}

std::uint64_t response_cost(const FloodResult& result) {
  std::uint64_t cost = 0;
  for (std::uint32_t d : result.depth) cost += d;
  return cost;
}

std::vector<TokenVisit> token_walk(Overlay& overlay, util::Rng& rng,
                                   NodeIndex source, std::uint32_t tokens,
                                   std::uint32_t ttl,
                                   const std::function<bool(NodeIndex)>& consumes,
                                   MessageKind kind) {
  const Graph& g = overlay.graph();
  std::vector<TokenVisit> visits;
  if (tokens == 0 || ttl == 0) return visits;

  std::vector<bool> visited(g.node_count(), false);
  visited[source] = true;

  struct Pending {
    NodeIndex node;
    std::uint32_t tokens;
    std::uint32_t ttl;
  };
  std::deque<Pending> frontier;

  // The source splits its token budget across its neighbors (Figure 4:
  // requestor R distributes the request with 6 tokens to its neighbors).
  {
    std::vector<NodeIndex> nbs;
    for (NodeIndex nb : g.neighbors(source)) {
      if (!visited[nb]) nbs.push_back(nb);
    }
    rng.shuffle(nbs);
    std::uint32_t remaining = tokens;
    for (std::size_t i = 0; i < nbs.size() && remaining > 0; ++i) {
      // Even split of what is left across the rest.
      const auto share = static_cast<std::uint32_t>(
          (remaining + nbs.size() - 1 - i) / (nbs.size() - i));
      overlay.count_send(kind);
      frontier.push_back({nbs[i], share, ttl});
      remaining -= share;
    }
  }

  while (!frontier.empty()) {
    Pending p = frontier.front();
    frontier.pop_front();
    if (visited[p.node]) {
      // A later copy reaches an already-visited node: its tokens are lost
      // with it (the node will not answer twice) unless it still forwards.
      continue;
    }
    visited[p.node] = true;
    std::uint32_t remaining = p.tokens;
    if (consumes(p.node) && remaining > 0) {
      // One token pays for this node's reply, returned directly to the
      // requestor (one message).
      visits.push_back({p.node, 1});
      overlay.count_send(kind);
      --remaining;
    }
    if (remaining == 0 || p.ttl <= 1) continue;
    std::vector<NodeIndex> nbs;
    for (NodeIndex nb : g.neighbors(p.node)) {
      if (!visited[nb]) nbs.push_back(nb);
    }
    if (nbs.empty()) continue;
    rng.shuffle(nbs);
    for (std::size_t i = 0; i < nbs.size() && remaining > 0; ++i) {
      const auto share = static_cast<std::uint32_t>(
          (remaining + nbs.size() - 1 - i) / (nbs.size() - i));
      overlay.count_send(kind);
      frontier.push_back({nbs[i], share, p.ttl - 1});
      remaining -= share;
    }
  }
  return visits;
}

std::vector<TokenVisit> token_walk(Transport& transport, util::Rng& rng,
                                   NodeIndex source, std::uint32_t tokens,
                                   std::uint32_t ttl,
                                   const std::function<bool(NodeIndex)>& consumes) {
  const Graph& g = transport.overlay().graph();
  std::vector<TokenVisit> visits;
  if (tokens == 0 || ttl == 0) return visits;

  std::vector<bool> visited(g.node_count(), false);
  visited[source] = true;

  struct Pending {
    NodeIndex node;
    NodeIndex from;
    std::uint32_t tokens;
    std::uint32_t ttl;
  };
  std::deque<Pending> frontier;

  // A forwarded share only survives if its envelope lands (a dropped
  // request loses the tokens it carried, exactly like a lossy link).
  const auto forward = [&](NodeIndex from, NodeIndex to, std::uint32_t share,
                           std::uint32_t ttl_left) {
    const auto receipt =
        transport.send(EnvelopeType::kAgentListRequest, from, {to});
    if (receipt.delivered) frontier.push_back({to, from, share, ttl_left});
  };

  // The source splits its token budget across its neighbors (Figure 4).
  {
    std::vector<NodeIndex> nbs;
    for (NodeIndex nb : g.neighbors(source)) {
      if (!visited[nb]) nbs.push_back(nb);
    }
    rng.shuffle(nbs);
    std::uint32_t remaining = tokens;
    for (std::size_t i = 0; i < nbs.size() && remaining > 0; ++i) {
      const auto share = static_cast<std::uint32_t>(
          (remaining + nbs.size() - 1 - i) / (nbs.size() - i));
      forward(source, nbs[i], share, ttl);
      remaining -= share;
    }
  }

  while (!frontier.empty()) {
    Pending p = frontier.front();
    frontier.pop_front();
    if (visited[p.node]) continue;  // duplicate copy: tokens lost with it
    visited[p.node] = true;
    std::uint32_t remaining = p.tokens;
    if (consumes(p.node) && remaining > 0) {
      // One token pays for this node's reply, returned directly to the
      // requestor; a dropped reply still consumed the token.
      const auto receipt =
          transport.send(EnvelopeType::kAgentListReply, p.node, {source});
      if (receipt.delivered) visits.push_back({p.node, 1});
      --remaining;
    }
    if (remaining == 0 || p.ttl <= 1) continue;
    std::vector<NodeIndex> nbs;
    for (NodeIndex nb : g.neighbors(p.node)) {
      if (!visited[nb]) nbs.push_back(nb);
    }
    if (nbs.empty()) continue;
    rng.shuffle(nbs);
    for (std::size_t i = 0; i < nbs.size() && remaining > 0; ++i) {
      const auto share = static_cast<std::uint32_t>(
          (remaining + nbs.size() - 1 - i) / (nbs.size() - i));
      forward(p.node, nbs[i], share, p.ttl - 1);
      remaining -= share;
    }
  }
  return visits;
}

}  // namespace hirep::net
