#include "net/flood.hpp"

#include <deque>
#include <limits>
#include <queue>

namespace hirep::net {

std::vector<NodeIndex> FloodResult::parents_by_node(
    std::size_t node_count) const {
  std::vector<NodeIndex> by_node(node_count, kInvalidNode);
  for (std::size_t i = 0; i < reached.size(); ++i) {
    by_node[reached[i]] = parent[i];
  }
  return by_node;
}

FloodResult flood(Overlay& overlay, NodeIndex source, std::uint32_t ttl,
                  MessageKind kind) {
  const Graph& g = overlay.graph();
  FloodResult result;
  if (ttl == 0) return result;

  constexpr auto kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> depth(g.node_count(), kUnseen);
  depth[source] = 0;

  struct Pending {
    NodeIndex node;
    NodeIndex from;
    std::uint32_t hops;  // hops taken so far
  };
  std::deque<Pending> frontier;

  // Source transmits to every neighbor.
  for (NodeIndex nb : g.neighbors(source)) {
    ++result.messages;
    frontier.push_back({nb, source, 1});
  }

  while (!frontier.empty()) {
    const Pending p = frontier.front();
    frontier.pop_front();
    if (depth[p.node] != kUnseen) continue;  // duplicate copy: counted, dropped
    depth[p.node] = p.hops;
    result.reached.push_back(p.node);
    result.depth.push_back(p.hops);
    result.parent.push_back(p.from);
    if (p.hops >= ttl) continue;  // TTL exhausted: no forward
    for (NodeIndex nb : g.neighbors(p.node)) {
      if (nb == p.from) continue;
      ++result.messages;
      frontier.push_back({nb, p.node, p.hops + 1});
    }
  }
  overlay.count_send(kind, result.messages);
  return result;
}

FloodResult flood(Transport& transport, NodeIndex source, std::uint32_t ttl,
                  EnvelopeType type) {
  const Graph& g = transport.overlay().graph();
  FloodResult result;
  if (ttl == 0) return result;

  constexpr auto kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> depth(g.node_count(), kUnseen);
  depth[source] = 0;

  // BFS by rounds over the batched transport: every edge transmission of
  // one ring of the flood rides in one EnvelopeBatch.  Because the
  // sequential form's FIFO frontier is strictly round-ordered and a node's
  // forwards are emitted in pop order, pushing round r's edges in that
  // same order keeps the delivery-policy stream hop-for-hop identical to
  // per-envelope sends (pinned by tests/net/transport_batch_test.cpp).
  struct Tx {
    NodeIndex to;
    NodeIndex from;
    std::uint32_t hops;
  };
  std::vector<Tx> round;
  std::vector<Tx> next;
  EnvelopeBatch batch = transport.make_batch();

  for (NodeIndex nb : g.neighbors(source)) round.push_back({nb, source, 1});

  while (!round.empty()) {
    batch.clear();
    for (const Tx& tx : round) {
      batch.push(type, tx.from, std::span<const NodeIndex>(&tx.to, 1));
    }
    const auto receipts = transport.send_batch(batch);
    next.clear();
    for (std::size_t i = 0; i < round.size(); ++i) {
      result.messages += receipts[i].messages;
      // A dropped copy never enters the frontier.
      if (!receipts[i].delivered) continue;
      const Tx& tx = round[i];
      if (depth[tx.to] != kUnseen) continue;  // duplicate copy: dropped
      depth[tx.to] = tx.hops;
      result.reached.push_back(tx.to);
      result.depth.push_back(tx.hops);
      result.parent.push_back(tx.from);
      if (tx.hops >= ttl) continue;
      for (NodeIndex nb : g.neighbors(tx.to)) {
        if (nb == tx.from) continue;
        next.push_back({nb, tx.to, tx.hops + 1});
      }
    }
    round.swap(next);
  }
  return result;
}

std::vector<TimedArrival> timed_flood(Overlay& overlay, NodeIndex source,
                                      std::uint32_t ttl, double start_ms,
                                      MessageKind kind) {
  const Graph& g = overlay.graph();
  std::vector<TimedArrival> arrivals;
  if (ttl == 0) return arrivals;

  constexpr auto kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> depth(g.node_count(), kUnseen);
  depth[source] = 0;

  struct Transmission {
    double handled_ms;  // completion of receiver-side handling
    NodeIndex node;
    NodeIndex from;
    std::uint32_t hops;
  };
  struct Later {
    bool operator()(const Transmission& a, const Transmission& b) const noexcept {
      return a.handled_ms > b.handled_ms;
    }
  };
  std::priority_queue<Transmission, std::vector<Transmission>, Later> queue;

  for (NodeIndex nb : g.neighbors(source)) {
    const double t = overlay.timed_send(start_ms, source, nb, kind);
    queue.push({t, nb, source, 1});
  }
  while (!queue.empty()) {
    const Transmission tx = queue.top();
    queue.pop();
    if (depth[tx.node] != kUnseen) continue;
    depth[tx.node] = tx.hops;
    arrivals.push_back({tx.node, tx.from, tx.hops, tx.handled_ms});
    if (tx.hops >= ttl) continue;
    for (NodeIndex nb : g.neighbors(tx.node)) {
      if (nb == tx.from) continue;
      const double t = overlay.timed_send(tx.handled_ms, tx.node, nb, kind);
      queue.push({t, nb, tx.node, tx.hops + 1});
    }
  }
  return arrivals;
}

std::uint64_t response_cost(const FloodResult& result) {
  std::uint64_t cost = 0;
  for (std::uint32_t d : result.depth) cost += d;
  return cost;
}

std::vector<TokenVisit> token_walk(Overlay& overlay, util::Rng& rng,
                                   NodeIndex source, std::uint32_t tokens,
                                   std::uint32_t ttl,
                                   const std::function<bool(NodeIndex)>& consumes,
                                   MessageKind kind) {
  const Graph& g = overlay.graph();
  std::vector<TokenVisit> visits;
  if (tokens == 0 || ttl == 0) return visits;

  std::vector<bool> visited(g.node_count(), false);
  visited[source] = true;

  struct Pending {
    NodeIndex node;
    std::uint32_t tokens;
    std::uint32_t ttl;
  };
  std::deque<Pending> frontier;

  // The source splits its token budget across its neighbors (Figure 4:
  // requestor R distributes the request with 6 tokens to its neighbors).
  {
    std::vector<NodeIndex> nbs;
    for (NodeIndex nb : g.neighbors(source)) {
      if (!visited[nb]) nbs.push_back(nb);
    }
    rng.shuffle(nbs);
    std::uint32_t remaining = tokens;
    for (std::size_t i = 0; i < nbs.size() && remaining > 0; ++i) {
      // Even split of what is left across the rest.
      const auto share = static_cast<std::uint32_t>(
          (remaining + nbs.size() - 1 - i) / (nbs.size() - i));
      overlay.count_send(kind);
      frontier.push_back({nbs[i], share, ttl});
      remaining -= share;
    }
  }

  while (!frontier.empty()) {
    Pending p = frontier.front();
    frontier.pop_front();
    if (visited[p.node]) {
      // A later copy reaches an already-visited node: its tokens are lost
      // with it (the node will not answer twice) unless it still forwards.
      continue;
    }
    visited[p.node] = true;
    std::uint32_t remaining = p.tokens;
    if (consumes(p.node) && remaining > 0) {
      // One token pays for this node's reply, returned directly to the
      // requestor (one message).
      visits.push_back({p.node, 1});
      overlay.count_send(kind);
      --remaining;
    }
    if (remaining == 0 || p.ttl <= 1) continue;
    std::vector<NodeIndex> nbs;
    for (NodeIndex nb : g.neighbors(p.node)) {
      if (!visited[nb]) nbs.push_back(nb);
    }
    if (nbs.empty()) continue;
    rng.shuffle(nbs);
    for (std::size_t i = 0; i < nbs.size() && remaining > 0; ++i) {
      const auto share = static_cast<std::uint32_t>(
          (remaining + nbs.size() - 1 - i) / (nbs.size() - i));
      overlay.count_send(kind);
      frontier.push_back({nbs[i], share, p.ttl - 1});
      remaining -= share;
    }
  }
  return visits;
}

std::vector<TokenVisit> token_walk(Transport& transport, util::Rng& rng,
                                   NodeIndex source, std::uint32_t tokens,
                                   std::uint32_t ttl,
                                   const std::function<bool(NodeIndex)>& consumes) {
  const Graph& g = transport.overlay().graph();
  std::vector<TokenVisit> visits;
  if (tokens == 0 || ttl == 0) return visits;

  std::vector<bool> visited(g.node_count(), false);
  visited[source] = true;

  // Round-batched walk.  Each round plans its sends first — visiting
  // nodes, drawing the split shuffles from the caller's rng, computing
  // token shares — then ships every reply and forward of the round in one
  // EnvelopeBatch.  Neither visited[] nor the share arithmetic depends on
  // in-round delivery outcomes, and replies/forwards are planned in
  // exactly the per-node order the sequential form sent them, so both the
  // caller's rng stream and the delivery-policy stream are draw-for-draw
  // identical to per-envelope sends.
  struct Pending {
    NodeIndex node;
    std::uint32_t tokens;
    std::uint32_t ttl;
  };
  struct Planned {
    bool reply;      ///< reply to the source vs forwarded share
    NodeIndex node;  ///< replying node, or the forward's receiver
    std::uint32_t tokens;
    std::uint32_t ttl;
  };
  EnvelopeBatch batch = transport.make_batch();
  std::vector<Planned> plan;
  std::vector<Pending> landed;

  // Splits `remaining` tokens across the unvisited neighbors of `from`
  // (Figure 4: even split of what is left across the rest) and plans one
  // forward per share.  A dropped forward loses the tokens it carried,
  // exactly like a lossy link.
  const auto plan_forwards = [&](NodeIndex from, std::uint32_t remaining,
                                 std::uint32_t ttl_left) {
    std::vector<NodeIndex> nbs;
    for (NodeIndex nb : g.neighbors(from)) {
      if (!visited[nb]) nbs.push_back(nb);
    }
    rng.shuffle(nbs);
    for (std::size_t i = 0; i < nbs.size() && remaining > 0; ++i) {
      const auto share = static_cast<std::uint32_t>(
          (remaining + nbs.size() - 1 - i) / (nbs.size() - i));
      batch.push(EnvelopeType::kAgentListRequest, from,
                 std::span<const NodeIndex>(&nbs[i], 1));
      plan.push_back({false, nbs[i], share, ttl_left});
      remaining -= share;
    }
  };

  // The source splits its token budget across its neighbors (Figure 4).
  plan_forwards(source, tokens, ttl);

  while (!plan.empty()) {
    const auto receipts = transport.send_batch(batch);
    landed.clear();
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const Planned& p = plan[i];
      if (p.reply) {
        // A dropped reply still consumed the node's token.
        if (receipts[i].delivered) visits.push_back({p.node, 1});
      } else if (receipts[i].delivered) {
        landed.push_back({p.node, p.tokens, p.ttl});
      }
    }
    plan.clear();
    for (const Pending& p : landed) {
      if (visited[p.node]) continue;  // duplicate copy: tokens lost with it
      visited[p.node] = true;
      std::uint32_t remaining = p.tokens;
      if (consumes(p.node) && remaining > 0) {
        // One token pays for this node's reply, returned directly to the
        // requestor.
        batch.push(EnvelopeType::kAgentListReply, p.node,
                   std::span<const NodeIndex>(&source, 1));
        plan.push_back({true, p.node, 0, 0});
        --remaining;
      }
      if (remaining == 0 || p.ttl <= 1) continue;
      plan_forwards(p.node, remaining, p.ttl - 1);
    }
  }
  return visits;
}

}  // namespace hirep::net
