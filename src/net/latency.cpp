#include "net/latency.hpp"

#include <algorithm>

namespace hirep::net {

namespace {

// SplitMix64-style mix; good avalanche, cheap, dependency-free.
std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

LatencyModel::LatencyModel(LatencyParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

double LatencyModel::link_ms(NodeIndex a, NodeIndex b) const noexcept {
  const NodeIndex lo = std::min(a, b);
  const NodeIndex hi = std::max(a, b);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
  const std::uint64_t h = mix(key ^ mix(seed_));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return params_.link_min_ms + (params_.link_max_ms - params_.link_min_ms) * u;
}

}  // namespace hirep::net
