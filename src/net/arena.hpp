// PayloadArena — slab/bump allocator backing EnvelopeBatch payloads.
//
// The batched transport pipeline copies every outgoing payload into the
// transport's arena instead of handing each envelope its own heap vector:
// a batch of N envelopes costs at most a handful of slab allocations (and
// zero once the slabs are warm), where the per-envelope path cost N
// vector allocations.  Envelope::payload is a span view into this memory,
// valid until the arena position is rewound past it.
//
// Lifetime discipline (LIFO, like any region allocator):
//   * EnvelopeBatch::clear() captures the arena position (a Mark);
//     Transport::send_batch() rewinds to it once the receipts have copied
//     the delivered bytes out, so a batch leaves the arena exactly where
//     it found it.  Batches on one arena must therefore be sent in the
//     reverse order of their construction; in practice every call site
//     fills and sends one batch at a time.
//   * reset() drops everything at once — the scale engine calls it on
//     each lane arena at the wave barrier, so lane memory never grows
//     across waves.
//
// Slabs are stable: growing the arena allocates a new slab, it never
// moves existing ones, so spans handed out earlier stay valid until
// rewound past.  Occupancy is mirrored into the obs registry
// (net.arena.bytes_in_use / high_water / slab_allocs / slab_bytes /
// resets) so allocator pressure is measurable (bench/micro_transport).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace hirep::net {

class PayloadArena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 256 * 1024;

  explicit PayloadArena(std::size_t slab_bytes = kDefaultSlabBytes);
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  /// Uninitialised storage for `n` bytes (empty span when n == 0).  An
  /// allocation larger than the slab size gets a dedicated slab.
  std::span<std::uint8_t> allocate(std::size_t n);
  /// allocate + copy; the canonical "intern this payload" call.
  std::span<const std::uint8_t> store(std::span<const std::uint8_t> data);

  /// A position in the arena; rewind(mark()) is a no-op.
  struct Mark {
    std::size_t slab = 0;
    std::size_t used = 0;
  };
  Mark mark() const noexcept { return {active_, used_}; }
  /// Releases everything allocated after `m` (LIFO — see header comment).
  void rewind(Mark m) noexcept;
  /// Releases everything; slabs are retained for reuse.  Wave boundary.
  void reset() noexcept;

  std::size_t bytes_in_use() const noexcept;
  std::size_t high_water() const noexcept { return high_water_; }
  std::size_t slab_count() const noexcept { return slabs_.size(); }
  std::uint64_t slab_allocs() const noexcept { return slab_allocs_; }
  std::uint64_t resets() const noexcept { return resets_; }

 private:
  struct Slab {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };
  void add_slab(std::size_t at_least);
  void note_occupancy() noexcept;

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t active_ = 0;  ///< slab currently being filled
  std::size_t used_ = 0;    ///< bytes used in the active slab
  std::size_t high_water_ = 0;
  std::uint64_t slab_allocs_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace hirep::net
