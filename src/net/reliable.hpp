// Reliable request/response channel over the typed transport.
//
// Transport::send is fire-and-observe: a dropped hop simply comes back as
// `delivered == false`.  ReliableChannel wraps it with the retry discipline
// a real deployment needs — a per-attempt deadline, bounded retransmission,
// deterministic exponential backoff with seeded jitter — while keeping the
// determinism contract of the rest of the stack: the same (seed, policy,
// call sequence) produces the same wire behaviour, and the zero-retry
// default policy is call-for-call identical to a bare Transport::send (no
// extra RNG draws, no clock movement), which is what keeps the fig5/fig6
// goldens bit-identical.
//
// Duplicate suppression happens at two layers.  On the wire, the transport
// itself suppresses policy-duplicated copies by envelope id (the second
// copy lands and is discarded, see transport.cpp).  At the channel layer,
// retransmissions of one logical request are also applied at most once at
// the destination: a retry after a *late* delivery (deadline exceeded but
// the envelope did arrive) counts as a suppressed duplicate rather than a
// second application.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace hirep::net {

/// Bounded at-most-once ledger: remembers which logical request ids have
/// already been applied at a destination so a retransmission of an already
/// landed request is suppressed rather than applied twice.
///
/// State is bounded by two-generation compaction keyed on the sim clock: ids
/// live in a current and a previous generation; when the current generation
/// fills (`capacity` ids) or a clock window elapses, it becomes the previous
/// generation and the old previous one is discarded.  Retained state never
/// exceeds 2 * capacity ids regardless of run length.  An id seen again is
/// refreshed into the current generation, so a request that is actively
/// being retried cannot age out between its own attempts.
class DedupTable {
 public:
  explicit DedupTable(std::size_t capacity = 4096,
                      double window_ms = 60'000.0)
      : capacity_(capacity == 0 ? 1 : capacity), window_ms_(window_ms) {}

  /// True exactly once per id: the first call records the id and returns
  /// true; later calls (within the retention bound) return false.
  bool first_application(std::uint64_t id, double now_ms);

  std::size_t size() const {
    util::MutexLock lock(mu_);
    return current_.size() + prev_.size();
  }
  /// Hard bound on size(): two generations of `capacity` ids each.
  std::size_t capacity() const noexcept { return 2 * capacity_; }

 private:
  void maybe_rotate(double now_ms) HIREP_REQUIRES(mu_);

  std::size_t capacity_;
  double window_ms_;
  /// Engine lanes each own a channel, so the table sees one thread in
  /// steady state; the mutex makes the at-most-once ledger safe to share
  /// and gives the thread-safety analysis a capability to check against.
  mutable util::Mutex mu_;
  double window_start_ HIREP_GUARDED_BY(mu_) = 0.0;
  std::unordered_set<std::uint64_t> current_ HIREP_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> prev_ HIREP_GUARDED_BY(mu_);
};

/// Retry discipline for one channel.  Defaults are the zero-retry identity
/// wrapper; anything stronger is opt-in per scenario.
struct ReliablePolicy {
  std::uint32_t max_attempts = 1;  ///< total tries (1 = no retries)
  double timeout_ms = 0.0;  ///< per-attempt deadline; 0 = loss-signal only
  double backoff_ms = 0.0;  ///< base backoff; attempt k waits base * 2^(k-2)
  double jitter_ms = 0.0;   ///< + uniform [0, jitter) drawn from the channel rng
};

/// What the caller learns about one logical request.
struct RequestOutcome {
  bool ok = false;       ///< a copy arrived within the deadline; payload valid
  bool applied = false;  ///< destination received >= 1 copy (side effects
                         ///< apply exactly once even when ok is false)
  std::uint32_t attempts = 0;   ///< transmissions tried (>= 1)
  std::uint32_t timeouts = 0;   ///< attempts lost or past the deadline
  std::uint64_t messages = 0;   ///< wire transmissions across all attempts
  double completion_ms = 0.0;   ///< sim clock when the accepted copy landed
  NodeIndex destination = kInvalidNode;
  util::Bytes payload;          ///< destination-side bytes (ok only)
};

class ReliableChannel {
 public:
  /// Cumulative per-channel counters (mirrored into the obs registry under
  /// net.reliable.* at count time).
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;         ///< attempts beyond the first
    std::uint64_t timeouts = 0;        ///< per-attempt losses/deadline misses
    std::uint64_t gave_up = 0;         ///< requests that exhausted attempts
    std::uint64_t dup_suppressed = 0;  ///< retransmissions applied-then-dropped
  };

  /// The channel draws backoff jitter from its own Rng (seeded here) so
  /// retries never perturb the simulation's main random stream.
  ReliableChannel(Transport* transport, ReliablePolicy policy,
                  std::uint64_t seed)
      : transport_(transport), policy_(policy), rng_(seed) {}

  /// Sends one logical request along `path`, retrying per the policy.
  /// Backoff is realised on the transport's EventSim clock, so retried
  /// traffic is correctly ordered against everything else in the run.
  RequestOutcome request(EnvelopeType type, NodeIndex sender,
                         const std::vector<NodeIndex>& path,
                         util::Bytes payload = {});

  /// One logical request of a batch; `path` must outlive the
  /// request_batch() call, `payload` is copied into the transport arena at
  /// enqueue time.
  struct BatchRequest {
    NodeIndex sender = kInvalidNode;
    const std::vector<NodeIndex>* path = nullptr;
    std::span<const std::uint8_t> payload;
  };

  /// Sends many logical requests through the batched transport path.
  /// Attempts advance in waves: wave 1 enqueues every request into one
  /// EnvelopeBatch; each later wave waits one backoff (a single jitter
  /// draw per wave, not per request) and retransmits every still-pending
  /// request in the batch of that attempt tick.  With the default
  /// zero-retry policy this is request-for-request identical to sequential
  /// request() calls (per-request deadlines are measured from the
  /// receipt's own start_ms); under retries, coalescing the backoff into
  /// per-wave ticks is the intended behaviour change of the batched path.
  std::vector<RequestOutcome> request_batch(
      EnvelopeType type, std::span<const BatchRequest> requests);

  Transport& transport() noexcept { return *transport_; }
  const ReliablePolicy& policy() const noexcept { return policy_; }
  const Stats& stats() const noexcept { return stats_; }

  std::size_t dedup_size() const { return dedup_.size(); }
  std::size_t dedup_capacity() const noexcept { return dedup_.capacity(); }

 private:
  /// Folds one delivery receipt into `out` (at-most-once ledger, deadline
  /// check, stats); true when the request is now satisfied.
  bool settle(const DeliveryReceipt& receipt, std::uint64_t request_id,
              RequestOutcome& out);

  Transport* transport_;
  ReliablePolicy policy_;
  util::Rng rng_;
  Stats stats_;
  DedupTable dedup_;
  std::uint64_t next_request_id_ = 0;
};

}  // namespace hirep::net
