// The typed transport layer: every protocol interaction (trust requests,
// responses, reports, agent-list walks, key rotation, probes, baseline
// polls) travels as an explicit Envelope, hop by hop along a node path,
// scheduled on the net::EventSim clock.
//
// Delivery behaviour is a pluggable DeliveryPolicy:
//   * InstantDelivery — zero delay, no loss: bit-for-bit identical message
//     counts and estimates to direct counted sends (the kFast sweeps);
//   * LatencyDelivery — per-hop delay from the overlay's LatencyModel;
//   * FaultyDelivery  — seeded per-hop drop / duplicate / extra-delay
//     probabilities, independent of the simulation RNG stream.
//
// A dropped hop loses the envelope (the transmission is still counted —
// the message left the sender); callers observe `delivered == false` and
// fall back exactly as the paper's §3.4.3 maintenance prescribes.  All
// outcomes are tallied per EnvelopeType in net::EnvelopeMetrics.
//
// Batched data path (DESIGN.md §11): call sites that fan out many
// independent envelopes fill an EnvelopeBatch — payload bytes interned in
// the transport's PayloadArena, paths pooled — and hand it to
// send_batch(), which runs the delivery engine per envelope in a tight
// loop and flushes the metric deltas once per batch.  Envelopes are
// processed strictly one at a time, in push order, each drained to
// completion before the next begins, so a batch is *defined* to be
// byte-identical to the same sends issued sequentially: the policy sees
// the exact same on_hop() call sequence, which keeps every policy RNG
// stream aligned and the fig5/fig6 goldens bit-identical (pinned by
// tests/net/transport_batch_test.cpp).  The single-envelope send() is the
// batch-of-one wrapper over the same engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "net/arena.hpp"
#include "net/event_sim.hpp"
#include "net/metrics.hpp"
#include "net/overlay.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace hirep::net {

/// One typed protocol message in flight.  `payload` is a zero-copy view
/// into the sender's buffer (or the transport arena for batched sends),
/// valid for the duration of the delivery; policies never read it.
struct Envelope {
  EnvelopeType type = EnvelopeType::kProbe;
  NodeIndex origin = kInvalidNode;       ///< first sender
  NodeIndex destination = kInvalidNode;  ///< final receiver (path end)
  std::uint64_t id = 0;                  ///< per-transport sequence number
  std::span<const std::uint8_t> payload; ///< wire bytes (empty in kFast mode)
};

/// A policy's verdict for one hop transmission.
struct HopDecision {
  bool drop = false;       ///< the copy is lost in transit
  bool duplicate = false;  ///< the hop is transmitted twice (both copies are
                           ///< counted on the wire; the second one lands and
                           ///< is suppressed at the receiver by envelope id,
                           ///< so handler side effects apply exactly once)
  double delay_ms = 0.0;   ///< sim-clock delay before the hop lands
};

class DeliveryPolicy {
 public:
  virtual ~DeliveryPolicy() = default;
  /// Called once per hop, in transmission order.  Implementations must be
  /// deterministic for a given construction seed and call sequence.
  virtual HopDecision on_hop(const Envelope& envelope, NodeIndex from,
                             NodeIndex to) = 0;
  virtual const char* name() const noexcept = 0;
};

/// Zero delay, no loss — the counted-send behaviour of the kFast sweeps.
class InstantDelivery final : public DeliveryPolicy {
 public:
  HopDecision on_hop(const Envelope&, NodeIndex, NodeIndex) override {
    return {};
  }
  const char* name() const noexcept override { return "instant"; }
};

/// Per-hop propagation + processing delay from the overlay's LatencyModel.
class LatencyDelivery final : public DeliveryPolicy {
 public:
  explicit LatencyDelivery(const LatencyModel* model) : model_(model) {}
  HopDecision on_hop(const Envelope&, NodeIndex from, NodeIndex to) override;
  const char* name() const noexcept override { return "latency"; }

 private:
  const LatencyModel* model_;
};

struct FaultParams {
  double drop_rate = 0.0;       ///< per-hop probability the copy is lost
  double duplicate_rate = 0.0;  ///< per-hop probability of a second copy
  double delay_min_ms = 0.0;    ///< uniform extra per-hop delay range
  double delay_max_ms = 0.0;
};

/// Seeded per-hop drop/delay/duplicate injection.  Owns its own Rng so
/// fault outcomes never perturb the simulation's main random stream: the
/// same (seed, params) world sees the same transactions with or without
/// faults, only the deliveries differ.
class FaultyDelivery final : public DeliveryPolicy {
 public:
  FaultyDelivery(FaultParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}
  HopDecision on_hop(const Envelope&, NodeIndex, NodeIndex) override;
  const char* name() const noexcept override { return "faulty"; }
  const FaultParams& params() const noexcept { return params_; }

 private:
  FaultParams params_;
  util::Rng rng_;
};

enum class DeliveryPolicyKind { kInstant, kLatency, kFaulty };

/// Declarative policy selection, embeddable in system option structs.
struct DeliveryConfig {
  DeliveryPolicyKind policy = DeliveryPolicyKind::kInstant;
  FaultParams faults;  ///< used by kFaulty
};

/// "instant" | "latency" | "faulty" -> kind (nullopt on anything else).
std::optional<DeliveryPolicyKind> policy_kind_by_name(std::string_view name);

/// Builds the configured policy; `latency` is required for kLatency and
/// `seed` seeds kFaulty's private Rng.
std::unique_ptr<DeliveryPolicy> make_policy(const DeliveryConfig& config,
                                            const LatencyModel* latency,
                                            std::uint64_t seed);

/// What the sender learns about a transfer once the event queue drains.
struct DeliveryReceipt {
  bool delivered = false;
  NodeIndex destination = kInvalidNode;
  std::uint64_t messages = 0;  ///< transmissions performed (incl. duplicates)
  std::uint32_t hops = 0;      ///< hops completed (landed at their receiver)
  double start_ms = 0.0;       ///< sim-clock time the send entered the wire
  double completion_ms = 0.0;  ///< sim-clock time the destination was reached
  util::Bytes payload;         ///< what the destination received (delivered only)
};

class Transport;

/// One contiguous run of a grouped drain: the shared key and the entry
/// indices carrying it, in original (stable) order.  The span points into
/// the caller-visible order scratch and stays valid until the next grouped
/// visit on the same owner.
struct ReceiptGroup {
  std::uint64_t key = 0;
  std::span<const std::uint32_t> entries;
};

/// The grouping engine shared by EnvelopeBatch::drain_groups and the scale
/// engine's shard-boundary exchange (DESIGN.md §14): appends to `order` the
/// indices in [0, count) accepted by `filter`, stable-sorts them by
/// `key_of` ascending, then invokes `fn` once per contiguous key run.
/// `order` is caller-owned scratch (cleared here, reusable across calls);
/// the ReceiptGroup spans handed to `fn` point into it and remain valid
/// until `order` is next mutated, so callers may collect groups and fan
/// them out to workers after this returns.
void visit_groups(std::size_t count,
                  const std::function<bool(std::uint32_t)>& filter,
                  const std::function<std::uint64_t(std::uint32_t)>& key_of,
                  std::vector<std::uint32_t>& order,
                  const std::function<void(const ReceiptGroup&)>& fn);

/// A set of independent envelopes built up by one call site and carried by
/// Transport::send_batch in one pass.  Payload bytes are interned into the
/// owning transport's PayloadArena at push() time (zero per-envelope heap
/// traffic); paths share one pooled vector.  After send_batch() the
/// receipts — parallel to push order — stay readable until the next
/// clear()/push(); the batch itself is reusable (capacity retained).
class EnvelopeBatch {
 public:
  /// Bind to the arena the payload bytes intern into; use
  /// Transport::make_batch() to bind to a transport's own arena.
  explicit EnvelopeBatch(PayloadArena* arena);

  /// Forgets entries and receipts and re-captures the arena position.
  void clear();

  /// Appends one envelope; returns its entry index.  `path` and `payload`
  /// are copied (into the pool / arena), so the caller's buffers may die.
  std::size_t push(EnvelopeType type, NodeIndex sender,
                   std::span<const NodeIndex> path,
                   std::span<const std::uint8_t> payload = {});

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Receipts parallel to push order; valid after send_batch().
  std::span<const DeliveryReceipt> receipts() const noexcept {
    return receipts_;
  }
  const DeliveryReceipt& receipt(std::size_t i) const {
    return receipts_.at(i);
  }

  /// Visits every *delivered* receipt grouped by `key_of(entry, receipt)`
  /// (ascending key, stable by entry order within a key), one ReceiptGroup
  /// per distinct key, so a consumer touching per-key state absorbs
  /// contiguous runs — per-destination absorption (key = destination) and
  /// the scale engine's shard-boundary exchange (key = destination shard)
  /// are the same visit.  Only valid for order-insensitive consumers —
  /// per-key state is fine, a cross-entry float accumulation is not.
  void drain_groups(
      const std::function<std::uint64_t(std::size_t, const DeliveryReceipt&)>&
          key_of,
      const std::function<void(const ReceiptGroup&)>& fn) const;

 private:
  friend class Transport;

  struct Entry {
    EnvelopeType type = EnvelopeType::kProbe;
    NodeIndex sender = kInvalidNode;
    std::uint32_t path_offset = 0;
    std::uint32_t path_size = 0;
    const std::uint8_t* payload = nullptr;  ///< arena memory (stable slabs)
    std::uint32_t payload_size = 0;
  };

  PayloadArena* arena_;
  PayloadArena::Mark mark_{};  ///< arena position this batch builds above
  std::vector<Entry> entries_;
  std::vector<NodeIndex> path_pool_;
  std::vector<DeliveryReceipt> receipts_;
  mutable std::vector<std::uint32_t> order_;  ///< grouped-drain scratch
};

class Transport {
 public:
  /// Builds the configured policy over `overlay` (which supplies both the
  /// hop counters and, for kLatency, the latency model).
  Transport(Overlay* overlay, const DeliveryConfig& config, std::uint64_t seed);
  Transport(Overlay* overlay, std::unique_ptr<DeliveryPolicy> policy);
  /// Teardown runs the envelope-conservation invariant: every envelope this
  /// transport accepted must be delivered, dropped, or still in flight.
  ~Transport();

  Overlay& overlay() noexcept { return *overlay_; }
  EventSim& sim() noexcept { return sim_; }
  DeliveryPolicy& policy() noexcept { return *policy_; }
  /// Swaps the delivery policy mid-run (churn/fault scenarios).
  void set_policy(std::unique_ptr<DeliveryPolicy> policy);

  /// The slab arena batched payloads intern into.  The scale engine resets
  /// each lane's arena at the wave barrier (absorb_envelopes time).
  PayloadArena& arena() noexcept { return arena_; }
  /// An empty batch bound to this transport's arena.
  EnvelopeBatch make_batch() { return EnvelopeBatch(&arena_); }

  EnvelopeMetrics& envelopes() noexcept { return envelopes_; }
  const EnvelopeMetrics& envelopes() const noexcept { return envelopes_; }

  /// Folds `other`'s per-envelope counters into this transport and zeroes
  /// them, so a lane transport used for one execution wave tears down empty
  /// (its conservation invariant holds trivially) while the primary
  /// transport's totals match what a serial run would have accumulated.
  void absorb_envelopes(Transport& other) noexcept {
    envelopes_.absorb(other.envelopes_);
    other.envelopes_.reset();
  }

  /// Carries one typed envelope from `sender` hop-by-hop along `path`
  /// (successive receivers; path.back() is the destination).  Each hop is
  /// an EventSim event at now + policy delay; the queue drains before the
  /// receipt returns, so call sites stay synchronous while the message
  /// path itself is event-driven.  Every transmission is counted into the
  /// overlay's TrafficMetrics under kind_of(type).  Implemented as a
  /// batch-of-one over the batched engine.
  DeliveryReceipt send(EnvelopeType type, NodeIndex sender,
                       const std::vector<NodeIndex>& path,
                       util::Bytes payload = {});

  /// Carries every envelope in `batch`, strictly in push order, each one
  /// drained to completion before the next starts — byte-identical to the
  /// equivalent sequence of send() calls (the determinism contract; see
  /// header comment).  Per-type/per-kind metric deltas accumulate locally
  /// and flush once at the end; the batch's arena bytes are released
  /// (receipts keep their own copies of delivered payloads).  Returns
  /// batch.receipts().
  std::span<const DeliveryReceipt> send_batch(EnvelopeBatch& batch);

 private:
  /// Local metric deltas for one send()/send_batch() flush.
  struct Acc;

  /// The delivery engine for one envelope: runs the policy per hop in a
  /// tight loop while hops land instantly, falling back to the EventSim
  /// chain from the first hop with a positive delay.
  void transmit_one(EnvelopeType type, NodeIndex sender,
                    std::span<const NodeIndex> path,
                    std::span<const std::uint8_t> payload,
                    DeliveryReceipt& receipt, Acc& acc);
  void transmit_delayed(const Envelope& envelope,
                        std::span<const NodeIndex> path, std::size_t start,
                        const HopDecision& first, DeliveryReceipt& receipt,
                        Acc& acc);
  void flush(const Acc& acc);

  Overlay* overlay_;
  EventSim sim_;
  std::unique_ptr<DeliveryPolicy> policy_;
  EnvelopeMetrics envelopes_;
  PayloadArena arena_;
  std::uint64_t next_id_ = 1;
};

}  // namespace hirep::net
