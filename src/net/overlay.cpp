#include "net/overlay.hpp"

#include <algorithm>
#include <stdexcept>

namespace hirep::net {

Overlay::Overlay(Graph graph, LatencyParams latency, std::uint64_t seed)
    : graph_(std::move(graph)),
      latency_(latency, seed),
      busy_until_(graph_.node_count(), 0.0) {}

double Overlay::timed_send(double depart_ms, NodeIndex from, NodeIndex to,
                           MessageKind kind) {
  if (to >= busy_until_.size()) throw std::out_of_range("bad destination");
  metrics_.count(kind);
  const double arrival = depart_ms + latency_.link_ms(from, to);
  const double start = std::max(arrival, busy_until_[to]);
  const double done = start + latency_.processing_ms();
  busy_until_[to] = done;
  return done;
}

double Overlay::estimate_send(double depart_ms, NodeIndex from,
                              NodeIndex to) const {
  const double arrival = depart_ms + latency_.link_ms(from, to);
  return std::max(arrival, busy_until_[to]) + latency_.processing_ms();
}

double Overlay::timed_path(double depart_ms,
                           const std::vector<NodeIndex>& path,
                           MessageKind kind) {
  if (path.size() < 2) return depart_ms;
  double t = depart_ms;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    t = timed_send(t, path[i], path[i + 1], kind);
  }
  return t;
}

double Overlay::stateless_path(double depart_ms,
                               const std::vector<NodeIndex>& path,
                               MessageKind kind) {
  if (path.size() < 2) return depart_ms;
  double t = depart_ms;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    metrics_.count(kind);
    t += latency_.link_ms(path[i], path[i + 1]) + latency_.processing_ms();
  }
  return t;
}

void Overlay::reset_time_state() {
  std::fill(busy_until_.begin(), busy_until_.end(), 0.0);
}

NodeIndex Overlay::add_node(std::span<const NodeIndex> neighbors) {
  const NodeIndex v = graph_.add_node();
  busy_until_.push_back(0.0);
  for (NodeIndex nb : neighbors) graph_.add_edge(v, nb);
  return v;
}

NodeIndex Overlay::sample_by_degree(util::Rng& rng) const {
  // Pick a uniform edge endpoint: that is exactly degree-proportional.
  const std::size_t n = graph_.node_count();
  if (graph_.edge_count() == 0) {
    return static_cast<NodeIndex>(rng.below(n));
  }
  for (;;) {
    const auto v = static_cast<NodeIndex>(rng.below(n));
    const auto deg = graph_.degree(v);
    if (deg == 0) continue;
    return graph_.neighbors(v)[rng.below(deg)];
  }
}

}  // namespace hirep::net
