#include "net/transport.hpp"

#include <functional>
#include <stdexcept>

#include "check/invariants.hpp"

namespace hirep::net {

HopDecision LatencyDelivery::on_hop(const Envelope&, NodeIndex from,
                                    NodeIndex to) {
  HopDecision decision;
  decision.delay_ms = model_->link_ms(from, to) + model_->processing_ms();
  return decision;
}

HopDecision FaultyDelivery::on_hop(const Envelope&, NodeIndex, NodeIndex) {
  // Always draw the same number of variates per hop so the fault stream
  // stays aligned regardless of earlier outcomes.
  const bool drop = rng_.chance(params_.drop_rate);
  const bool duplicate = rng_.chance(params_.duplicate_rate);
  const double delay =
      params_.delay_max_ms > params_.delay_min_ms
          ? rng_.uniform(params_.delay_min_ms, params_.delay_max_ms)
          : params_.delay_min_ms;
  HopDecision decision;
  decision.drop = drop;
  decision.duplicate = !drop && duplicate;
  decision.delay_ms = delay;
  return decision;
}

std::optional<DeliveryPolicyKind> policy_kind_by_name(std::string_view name) {
  if (name == "instant") return DeliveryPolicyKind::kInstant;
  if (name == "latency") return DeliveryPolicyKind::kLatency;
  if (name == "faulty") return DeliveryPolicyKind::kFaulty;
  return std::nullopt;
}

std::unique_ptr<DeliveryPolicy> make_policy(const DeliveryConfig& config,
                                            const LatencyModel* latency,
                                            std::uint64_t seed) {
  switch (config.policy) {
    case DeliveryPolicyKind::kInstant:
      return std::make_unique<InstantDelivery>();
    case DeliveryPolicyKind::kLatency:
      if (latency == nullptr) {
        throw std::invalid_argument("latency policy needs a LatencyModel");
      }
      return std::make_unique<LatencyDelivery>(latency);
    case DeliveryPolicyKind::kFaulty:
      return std::make_unique<FaultyDelivery>(config.faults, seed);
  }
  throw std::invalid_argument("unknown delivery policy");
}

Transport::Transport(Overlay* overlay, const DeliveryConfig& config,
                     std::uint64_t seed)
    : overlay_(overlay),
      policy_(make_policy(config, &overlay->latency(), seed)) {}

Transport::Transport(Overlay* overlay, std::unique_ptr<DeliveryPolicy> policy)
    : overlay_(overlay), policy_(std::move(policy)) {}

Transport::~Transport() {
  if constexpr (check::kEnabled) {
    // send() drains its event queue before returning, so at teardown no
    // envelope can still be in flight and the per-type ledger must balance
    // exactly: sent == delivered + dropped.  Pending events cannot be
    // attributed to a type, so with a non-empty queue only the total is
    // checked.
    const std::uint64_t in_flight = sim_.pending();
    if (in_flight == 0) {
      for (std::size_t i = 0;
           i < static_cast<std::size_t>(EnvelopeType::kCount); ++i) {
        const auto type = static_cast<EnvelopeType>(i);
        const EnvelopeMetrics::Counters& c = envelopes_.of(type);
        check::conserved("net.envelope.conservation", c.sent, c.delivered,
                         c.dropped, 0, to_string(type));
      }
    } else {
      check::conserved("net.envelope.conservation", envelopes_.total_sent(),
                       envelopes_.total_delivered(),
                       envelopes_.total_dropped(), in_flight, "total");
    }
  }
}

void Transport::set_policy(std::unique_ptr<DeliveryPolicy> policy) {
  policy_ = std::move(policy);
}

DeliveryReceipt Transport::send(EnvelopeType type, NodeIndex sender,
                                const std::vector<NodeIndex>& path,
                                util::Bytes payload) {
  DeliveryReceipt receipt;
  if (path.empty()) return receipt;

  Envelope envelope;
  envelope.type = type;
  envelope.origin = sender;
  envelope.destination = path.back();
  envelope.id = next_id_++;
  envelope.payload = std::move(payload);
  envelopes_.count_sent(type);
  const MessageKind kind = kind_of(type);

  // Hop chain as a self-scheduling event sequence.  All events fire inside
  // this call's sim_.run(), so reference captures of locals are safe.
  std::function<void(std::size_t, NodeIndex)> transmit;
  transmit = [&](std::size_t index, NodeIndex from) {
    const NodeIndex to = path[index];
    const HopDecision decision = policy_->on_hop(envelope, from, to);
    const std::uint64_t copies = decision.duplicate ? 2 : 1;
    overlay_->count_send(kind, copies);
    receipt.messages += copies;
    envelopes_.count_hops(type, copies);
    if (decision.duplicate) envelopes_.count_duplicated(type);
    if (decision.drop) {
      envelopes_.count_dropped(type);
      return;  // the copy left the sender but never lands
    }
    sim_.schedule_in(decision.delay_ms, [&, index, to] {
      ++receipt.hops;
      if (index + 1 == path.size()) {
        receipt.delivered = true;
        receipt.destination = to;
        receipt.completion_ms = sim_.now();
        receipt.payload = std::move(envelope.payload);
        envelopes_.count_delivered(envelope.type);
        return;
      }
      transmit(index + 1, to);
    });
    if (decision.duplicate) {
      // The second copy lands too, but the receiver has already seen this
      // envelope id (the primary copy was scheduled first at the same
      // delay, so FIFO ordering lands it first): the duplicate is
      // discarded without re-forwarding or re-applying any side effect.
      sim_.schedule_in(decision.delay_ms,
                       [this, type] { envelopes_.count_suppressed(type); });
    }
  };
  transmit(0, sender);
  sim_.run();
  return receipt;
}

}  // namespace hirep::net
