#include "net/transport.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "check/invariants.hpp"
#include "obs/metrics.hpp"

namespace hirep::net {

namespace {

// Flat phase timers for the batched pipeline (bench/micro_transport reads
// their means).  Resolved once; record() is two relaxed atomics.
struct TransportTimers {
  obs::Timer* send;         ///< one batch-of-one send(), end to end
  obs::Timer* batch_build;  ///< one EnvelopeBatch::push()
  obs::Timer* drain;        ///< one send_batch() pass
};

const TransportTimers& transport_timers() {
  static const TransportTimers timers = [] {
    auto& reg = obs::Registry::global();
    return TransportTimers{&reg.timer("transport/send"),
                           &reg.timer("transport/batch_build"),
                           &reg.timer("transport/drain")};
  }();
  return timers;
}

}  // namespace

HopDecision LatencyDelivery::on_hop(const Envelope&, NodeIndex from,
                                    NodeIndex to) {
  HopDecision decision;
  decision.delay_ms = model_->link_ms(from, to) + model_->processing_ms();
  return decision;
}

HopDecision FaultyDelivery::on_hop(const Envelope&, NodeIndex, NodeIndex) {
  // Always draw the same number of variates per hop so the fault stream
  // stays aligned regardless of earlier outcomes.
  const bool drop = rng_.chance(params_.drop_rate);
  const bool duplicate = rng_.chance(params_.duplicate_rate);
  const double delay =
      params_.delay_max_ms > params_.delay_min_ms
          ? rng_.uniform(params_.delay_min_ms, params_.delay_max_ms)
          : params_.delay_min_ms;
  HopDecision decision;
  decision.drop = drop;
  decision.duplicate = !drop && duplicate;
  decision.delay_ms = delay;
  return decision;
}

std::optional<DeliveryPolicyKind> policy_kind_by_name(std::string_view name) {
  if (name == "instant") return DeliveryPolicyKind::kInstant;
  if (name == "latency") return DeliveryPolicyKind::kLatency;
  if (name == "faulty") return DeliveryPolicyKind::kFaulty;
  return std::nullopt;
}

std::unique_ptr<DeliveryPolicy> make_policy(const DeliveryConfig& config,
                                            const LatencyModel* latency,
                                            std::uint64_t seed) {
  switch (config.policy) {
    case DeliveryPolicyKind::kInstant:
      return std::make_unique<InstantDelivery>();
    case DeliveryPolicyKind::kLatency:
      if (latency == nullptr) {
        throw std::invalid_argument("latency policy needs a LatencyModel");
      }
      return std::make_unique<LatencyDelivery>(latency);
    case DeliveryPolicyKind::kFaulty:
      return std::make_unique<FaultyDelivery>(config.faults, seed);
  }
  throw std::invalid_argument("unknown delivery policy");
}

// ---------------------------------------------------------------------------
// EnvelopeBatch

EnvelopeBatch::EnvelopeBatch(PayloadArena* arena) : arena_(arena) {
  if (arena_ == nullptr) {
    throw std::invalid_argument("EnvelopeBatch needs a PayloadArena");
  }
  mark_ = arena_->mark();
}

void EnvelopeBatch::clear() {
  // LIFO discipline: everything above mark_ belongs to this batch, so an
  // unsent batch releases its arena bytes here.
  if (!entries_.empty()) arena_->rewind(mark_);
  entries_.clear();
  path_pool_.clear();
  receipts_.clear();
  mark_ = arena_->mark();
}

std::size_t EnvelopeBatch::push(EnvelopeType type, NodeIndex sender,
                                std::span<const NodeIndex> path,
                                std::span<const std::uint8_t> payload) {
  std::uint64_t t0 = 0;
  if constexpr (obs::kEnabled) t0 = obs::now_ns();
  Entry entry;
  entry.type = type;
  entry.sender = sender;
  entry.path_offset = static_cast<std::uint32_t>(path_pool_.size());
  entry.path_size = static_cast<std::uint32_t>(path.size());
  path_pool_.insert(path_pool_.end(), path.begin(), path.end());
  const auto interned = arena_->store(payload);
  entry.payload = interned.data();
  entry.payload_size = static_cast<std::uint32_t>(interned.size());
  entries_.push_back(entry);
  if constexpr (obs::kEnabled) {
    transport_timers().batch_build->record(obs::now_ns() - t0);
  }
  return entries_.size() - 1;
}

void visit_groups(std::size_t count,
                  const std::function<bool(std::uint32_t)>& filter,
                  const std::function<std::uint64_t(std::uint32_t)>& key_of,
                  std::vector<std::uint32_t>& order,
                  const std::function<void(const ReceiptGroup&)>& fn) {
  order.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    if (filter(i)) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&key_of](std::uint32_t a, std::uint32_t b) {
                     return key_of(a) < key_of(b);
                   });
  std::size_t at = 0;
  while (at < order.size()) {
    const std::uint64_t key = key_of(order[at]);
    std::size_t end = at + 1;
    while (end < order.size() && key_of(order[end]) == key) ++end;
    fn(ReceiptGroup{key, std::span(order).subspan(at, end - at)});
    at = end;
  }
}

void EnvelopeBatch::drain_groups(
    const std::function<std::uint64_t(std::size_t, const DeliveryReceipt&)>&
        key_of,
    const std::function<void(const ReceiptGroup&)>& fn) const {
  visit_groups(
      receipts_.size(),
      [this](std::uint32_t i) { return receipts_[i].delivered; },
      [this, &key_of](std::uint32_t i) { return key_of(i, receipts_[i]); },
      order_, fn);
}

// ---------------------------------------------------------------------------
// Transport

/// Per-flush metric deltas: everything transmit_one counts lands here and
/// is folded into EnvelopeMetrics / TrafficMetrics once per send() or
/// send_batch().  Totals are exactly what per-hop counting would have
/// produced — only the update granularity changes, which no consumer can
/// observe (counters are read between sends, never inside one).
struct Transport::Acc {
  std::array<EnvelopeMetrics::Counters,
             static_cast<std::size_t>(EnvelopeType::kCount)>
      env{};
  std::array<std::uint64_t, static_cast<std::size_t>(MessageKind::kCount)>
      traffic{};
};

Transport::Transport(Overlay* overlay, const DeliveryConfig& config,
                     std::uint64_t seed)
    : overlay_(overlay),
      policy_(make_policy(config, &overlay->latency(), seed)) {}

Transport::Transport(Overlay* overlay, std::unique_ptr<DeliveryPolicy> policy)
    : overlay_(overlay), policy_(std::move(policy)) {}

Transport::~Transport() {
  if constexpr (check::kEnabled) {
    // send() drains its event queue before returning, so at teardown no
    // envelope can still be in flight and the per-type ledger must balance
    // exactly: sent == delivered + dropped.  Pending events cannot be
    // attributed to a type, so with a non-empty queue only the total is
    // checked.
    const std::uint64_t in_flight = sim_.pending();
    if (in_flight == 0) {
      for (std::size_t i = 0;
           i < static_cast<std::size_t>(EnvelopeType::kCount); ++i) {
        const auto type = static_cast<EnvelopeType>(i);
        const EnvelopeMetrics::Counters& c = envelopes_.of(type);
        check::conserved("net.envelope.conservation", c.sent, c.delivered,
                         c.dropped, 0, to_string(type));
      }
    } else {
      check::conserved("net.envelope.conservation", envelopes_.total_sent(),
                       envelopes_.total_delivered(),
                       envelopes_.total_dropped(), in_flight, "total");
    }
  }
}

void Transport::set_policy(std::unique_ptr<DeliveryPolicy> policy) {
  policy_ = std::move(policy);
}

void Transport::transmit_one(EnvelopeType type, NodeIndex sender,
                             std::span<const NodeIndex> path,
                             std::span<const std::uint8_t> payload,
                             DeliveryReceipt& receipt, Acc& acc) {
  receipt = DeliveryReceipt{};
  receipt.start_ms = sim_.now();
  if (path.empty()) return;

  Envelope envelope;
  envelope.type = type;
  envelope.origin = sender;
  envelope.destination = path.back();
  envelope.id = next_id_++;
  envelope.payload = payload;
  EnvelopeMetrics::Counters& ec = acc.env[static_cast<std::size_t>(type)];
  std::uint64_t& traffic =
      acc.traffic[static_cast<std::size_t>(kind_of(type))];
  ++ec.sent;
  ec.payload_bytes_sent += payload.size();

  // Tight loop while hops land instantly — the batched fast path: no
  // event allocation, no queue, no clock movement.  A zero-delay landing
  // processed inline is indistinguishable from the event-driven form (the
  // landing would fire immediately, FIFO, at the same now()); the policy
  // sees the identical on_hop() sequence either way, which is the RNG
  // stream-alignment contract.
  std::size_t index = 0;
  NodeIndex from = sender;
  for (;;) {
    const NodeIndex to = path[index];
    const HopDecision decision = policy_->on_hop(envelope, from, to);
    const std::uint64_t copies = decision.duplicate ? 2 : 1;
    traffic += copies;
    receipt.messages += copies;
    ec.hop_messages += copies;
    if (decision.duplicate) ++ec.duplicated;
    if (decision.drop) {
      ++ec.dropped;  // the copy left the sender but never lands
      ec.payload_bytes_dropped += payload.size();
      return;
    }
    if (decision.delay_ms > 0.0) {
      transmit_delayed(envelope, path, index, decision, receipt, acc);
      return;
    }
    ++receipt.hops;
    // The duplicated copy lands right behind the primary at the same
    // (zero) delay and is discarded by envelope id.
    if (decision.duplicate) ++ec.suppressed;
    if (index + 1 == path.size()) {
      receipt.delivered = true;
      receipt.destination = to;
      receipt.completion_ms = sim_.now();
      receipt.payload.assign(payload.begin(), payload.end());
      ++ec.delivered;
      ec.payload_bytes_delivered += payload.size();
      return;
    }
    from = to;
    ++index;
  }
}

void Transport::transmit_delayed(const Envelope& envelope,
                                 std::span<const NodeIndex> path,
                                 std::size_t start, const HopDecision& first,
                                 DeliveryReceipt& receipt, Acc& acc) {
  EnvelopeMetrics::Counters& ec =
      acc.env[static_cast<std::size_t>(envelope.type)];
  std::uint64_t& traffic =
      acc.traffic[static_cast<std::size_t>(kind_of(envelope.type))];

  // Hop chain as a self-scheduling event sequence, picking up at hop
  // `start` whose decision is already drawn.  All events fire inside this
  // call's sim_.run(), so reference captures of locals are safe.
  std::function<void(std::size_t, NodeIndex)> transmit;
  std::function<void(std::size_t, NodeIndex)> land;
  land = [&](std::size_t index, NodeIndex to) {
    ++receipt.hops;
    if (index + 1 == path.size()) {
      receipt.delivered = true;
      receipt.destination = to;
      receipt.completion_ms = sim_.now();
      receipt.payload.assign(envelope.payload.begin(),
                             envelope.payload.end());
      ++ec.delivered;
      ec.payload_bytes_delivered += envelope.payload.size();
      return;
    }
    transmit(index + 1, to);
  };
  transmit = [&](std::size_t index, NodeIndex from) {
    const NodeIndex to = path[index];
    const HopDecision decision = policy_->on_hop(envelope, from, to);
    const std::uint64_t copies = decision.duplicate ? 2 : 1;
    traffic += copies;
    receipt.messages += copies;
    ec.hop_messages += copies;
    if (decision.duplicate) ++ec.duplicated;
    if (decision.drop) {
      ++ec.dropped;
      ec.payload_bytes_dropped += envelope.payload.size();
      return;
    }
    sim_.schedule_in(decision.delay_ms,
                     [&, index, to] { land(index, to); });
    if (decision.duplicate) {
      // The second copy lands too, but the receiver has already seen this
      // envelope id (the primary copy was scheduled first at the same
      // delay, so FIFO ordering lands it first): the duplicate is
      // discarded without re-forwarding or re-applying any side effect.
      sim_.schedule_in(decision.delay_ms, [&ec] { ++ec.suppressed; });
    }
  };
  const NodeIndex to = path[start];
  sim_.schedule_in(first.delay_ms, [&, start, to] { land(start, to); });
  if (first.duplicate) {
    sim_.schedule_in(first.delay_ms, [&ec] { ++ec.suppressed; });
  }
  sim_.run();
}

void Transport::flush(const Acc& acc) {
  for (std::size_t i = 0; i < acc.env.size(); ++i) {
    envelopes_.add(static_cast<EnvelopeType>(i), acc.env[i]);
  }
  for (std::size_t k = 0; k < acc.traffic.size(); ++k) {
    if (acc.traffic[k] != 0) {
      overlay_->count_send(static_cast<MessageKind>(k), acc.traffic[k]);
    }
  }
}

DeliveryReceipt Transport::send(EnvelopeType type, NodeIndex sender,
                                const std::vector<NodeIndex>& path,
                                util::Bytes payload) {
  std::uint64_t t0 = 0;
  if constexpr (obs::kEnabled) t0 = obs::now_ns();
  // Batch-of-one: the same per-envelope engine and one metric flush; the
  // payload is viewed in place (no arena round trip).
  DeliveryReceipt receipt;
  Acc acc{};
  transmit_one(type, sender, path, payload, receipt, acc);
  flush(acc);
  if constexpr (obs::kEnabled) {
    transport_timers().send->record(obs::now_ns() - t0);
  }
  return receipt;
}

std::span<const DeliveryReceipt> Transport::send_batch(EnvelopeBatch& batch) {
  std::uint64_t t0 = 0;
  if constexpr (obs::kEnabled) t0 = obs::now_ns();
  batch.receipts_.resize(batch.entries_.size());
  Acc acc{};
  for (std::size_t i = 0; i < batch.entries_.size(); ++i) {
    const EnvelopeBatch::Entry& entry = batch.entries_[i];
    transmit_one(
        entry.type, entry.sender,
        std::span<const NodeIndex>(batch.path_pool_.data() + entry.path_offset,
                                   entry.path_size),
        std::span<const std::uint8_t>(entry.payload, entry.payload_size),
        batch.receipts_[i], acc);
  }
  flush(acc);
  // Delivered payloads have been copied into the receipts; release the
  // batch's arena bytes and leave the batch empty (receipts readable,
  // capacity retained) for the caller's next round.
  batch.arena_->rewind(batch.mark_);
  batch.entries_.clear();
  batch.path_pool_.clear();
  batch.mark_ = batch.arena_->mark();
  if constexpr (obs::kEnabled) {
    transport_timers().drain->record(obs::now_ns() - t0);
  }
  return batch.receipts();
}

}  // namespace hirep::net
