#include "net/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace hirep::net {

Graph::Graph(std::size_t nodes) : adjacency_(nodes) {}

Graph::Graph(const Graph& other)
    : adjacency_(other.adjacency_), edge_count_(other.edge_count_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  adjacency_ = other.adjacency_;
  edge_count_ = other.edge_count_;
  invalidate();
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : adjacency_(std::move(other.adjacency_)), edge_count_(other.edge_count_) {
  other.adjacency_.clear();
  other.edge_count_ = 0;
  other.invalidate();
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  adjacency_ = std::move(other.adjacency_);
  edge_count_ = other.edge_count_;
  invalidate();
  other.adjacency_.clear();
  other.edge_count_ = 0;
  other.invalidate();
  return *this;
}

void Graph::check(NodeIndex v) const {
  if (v >= adjacency_.size()) throw std::out_of_range("node index out of range");
}

void Graph::compact() const {
  std::lock_guard<std::mutex> lock(compact_mu_);
  if (compact_valid_.load(std::memory_order_relaxed)) return;
  offsets_.assign(adjacency_.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < adjacency_.size(); ++v) {
    offsets_[v] = total;
    total += adjacency_[v].size();
  }
  offsets_[adjacency_.size()] = total;
  flat_.clear();
  flat_.reserve(total);
  for (const auto& adj : adjacency_) {
    flat_.insert(flat_.end(), adj.begin(), adj.end());
  }
  compact_valid_.store(true, std::memory_order_release);
}

NodeIndex Graph::add_node() {
  adjacency_.emplace_back();
  invalidate();
  return static_cast<NodeIndex>(adjacency_.size() - 1);
}

bool Graph::add_edge(NodeIndex a, NodeIndex b) {
  check(a);
  check(b);
  if (a == b || has_edge(a, b)) return false;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edge_count_;
  invalidate();
  return true;
}

bool Graph::has_edge(NodeIndex a, NodeIndex b) const {
  check(a);
  check(b);
  // Scan the smaller adjacency list.
  const auto& list =
      adjacency_[a].size() <= adjacency_[b].size() ? adjacency_[a] : adjacency_[b];
  const NodeIndex needle = adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  return std::find(list.begin(), list.end(), needle) != list.end();
}

std::span<const NodeIndex> Graph::neighbors(NodeIndex v) const {
  check(v);
  if (!compact_valid_.load(std::memory_order_acquire)) compact();
  return {flat_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Graph::degree(NodeIndex v) const {
  check(v);
  return adjacency_[v].size();
}

double Graph::average_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) /
         static_cast<double>(adjacency_.size());
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (const auto& adj : adjacency_) best = std::max(best, adj.size());
  return best;
}

bool Graph::connected() const {
  if (adjacency_.empty()) return true;
  return component_size(0) == adjacency_.size();
}

std::size_t Graph::component_size(NodeIndex v) const {
  check(v);
  std::vector<bool> seen(adjacency_.size(), false);
  std::queue<NodeIndex> frontier;
  frontier.push(v);
  seen[v] = true;
  std::size_t count = 0;
  while (!frontier.empty()) {
    const NodeIndex cur = frontier.front();
    frontier.pop();
    ++count;
    for (NodeIndex next : adjacency_[cur]) {
      if (!seen[next]) {
        seen[next] = true;
        frontier.push(next);
      }
    }
  }
  return count;
}

std::vector<std::uint32_t> Graph::bfs_distances(NodeIndex source) const {
  check(source);
  constexpr auto kUnreachable = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(adjacency_.size(), kUnreachable);
  std::queue<NodeIndex> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeIndex cur = frontier.front();
    frontier.pop();
    for (NodeIndex next : adjacency_[cur]) {
      if (dist[next] == kUnreachable) {
        dist[next] = dist[cur] + 1;
        frontier.push(next);
      }
    }
  }
  return dist;
}

std::vector<std::size_t> Graph::degree_histogram() const {
  std::vector<std::size_t> hist(max_degree() + 1, 0);
  for (const auto& adj : adjacency_) ++hist[adj.size()];
  return hist;
}

}  // namespace hirep::net
