// Undirected overlay graph.  Nodes are dense indices (NodeIndex) — the
// simulator's "IP address" level identifiers, distinct from cryptographic
// NodeIds which live one layer up and are deliberately unlinkable to these.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hirep::net {

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidNode = static_cast<NodeIndex>(-1);

class Graph {
 public:
  explicit Graph(std::size_t nodes = 0);

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Appends an isolated node; returns its index.  Supports open
  /// membership — peers joining a running overlay.
  NodeIndex add_node();

  /// Adds an undirected edge; self-loops and duplicates are ignored
  /// (returns false for those).
  bool add_edge(NodeIndex a, NodeIndex b);
  bool has_edge(NodeIndex a, NodeIndex b) const;

  std::span<const NodeIndex> neighbors(NodeIndex v) const;
  std::size_t degree(NodeIndex v) const;
  double average_degree() const noexcept;
  std::size_t max_degree() const noexcept;

  /// True when every node can reach every other.
  bool connected() const;

  /// Size of the connected component containing v.
  std::size_t component_size(NodeIndex v) const;

  /// BFS hop distances from source; kInvalidNode-distance = unreachable
  /// (encoded as max uint32).
  std::vector<std::uint32_t> bfs_distances(NodeIndex source) const;

  /// Degree histogram: result[d] = number of nodes with degree d.
  std::vector<std::size_t> degree_histogram() const;

 private:
  void check(NodeIndex v) const;
  std::vector<std::vector<NodeIndex>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace hirep::net
