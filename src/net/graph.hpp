// Undirected overlay graph.  Nodes are dense indices (NodeIndex) — the
// simulator's "IP address" level identifiers, distinct from cryptographic
// NodeIds which live one layer up and are deliberately unlinkable to these.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace hirep::net {

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidNode = static_cast<NodeIndex>(-1);

/// Adjacency is built as per-node vectors (cheap appends during topology
/// construction) and lazily compacted into a CSR-style flat array the first
/// time neighbors() is called after a mutation, so the hot traversal path
/// walks contiguous memory.  Compaction is guarded by a mutex and published
/// with release/acquire, making concurrent neighbors() calls from engine
/// lanes safe on a frozen topology.  Spans returned by neighbors() are
/// invalidated by the next mutation, as before.
class Graph {
 public:
  explicit Graph(std::size_t nodes = 0);
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Appends an isolated node; returns its index.  Supports open
  /// membership — peers joining a running overlay.
  NodeIndex add_node();

  /// Adds an undirected edge; self-loops and duplicates are ignored
  /// (returns false for those).
  bool add_edge(NodeIndex a, NodeIndex b);
  bool has_edge(NodeIndex a, NodeIndex b) const;

  std::span<const NodeIndex> neighbors(NodeIndex v) const;
  std::size_t degree(NodeIndex v) const;
  double average_degree() const noexcept;
  std::size_t max_degree() const noexcept;

  /// True when every node can reach every other.
  bool connected() const;

  /// Size of the connected component containing v.
  std::size_t component_size(NodeIndex v) const;

  /// BFS hop distances from source; kInvalidNode-distance = unreachable
  /// (encoded as max uint32).
  std::vector<std::uint32_t> bfs_distances(NodeIndex source) const;

  /// Degree histogram: result[d] = number of nodes with degree d.
  std::vector<std::size_t> degree_histogram() const;

 private:
  void check(NodeIndex v) const;
  void compact() const;
  void invalidate() noexcept {
    compact_valid_.store(false, std::memory_order_release);
  }
  std::vector<std::vector<NodeIndex>> adjacency_;
  std::size_t edge_count_ = 0;

  // Lazily built CSR view of adjacency_: flat_[offsets_[v]..offsets_[v+1]).
  mutable std::vector<NodeIndex> flat_;
  mutable std::vector<std::size_t> offsets_;
  mutable std::atomic<bool> compact_valid_{false};
  mutable std::mutex compact_mu_;
};

}  // namespace hirep::net
