// Overlay topology generators.  The paper generates "a P2P network with
// power law topology using BRITE"; BRITE's flat router-level mode is the
// Barabási–Albert preferential-attachment process, which we implement
// directly.  Erdős–Rényi and ring-lattice generators are provided for
// tests and sensitivity studies.
#pragma once

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace hirep::net {

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `edges_per_node` existing nodes with
/// probability proportional to current degree.  Average degree converges to
/// ~2*edges_per_node; the paper's voting-n curves use edges_per_node = n/2
/// scaled via `target_average_degree` below.
Graph barabasi_albert(util::Rng& rng, std::size_t nodes,
                      std::size_t edges_per_node);

/// BA variant parameterised by the paper's "average number of neighbors":
/// picks attachment counts (possibly alternating) so the realised average
/// degree approximates `average_degree`, including odd values like 3.
Graph power_law(util::Rng& rng, std::size_t nodes, double average_degree);

/// Erdős–Rényi G(n, p) with p chosen for the given expected average degree.
Graph erdos_renyi(util::Rng& rng, std::size_t nodes, double average_degree);

/// Ring lattice with k neighbors on each side (deterministic; for tests).
Graph ring_lattice(std::size_t nodes, std::size_t k);

/// Adds random edges until the graph is one component (no-op if connected).
void ensure_connected(util::Rng& rng, Graph& graph);

}  // namespace hirep::net
