// Traffic accounting.  The paper's primary efficiency metric (Figure 5) is
// "messages induced in the trust query process"; every overlay delivery
// increments one of these counters, tagged by purpose.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace hirep::net {

enum class MessageKind : std::uint8_t {
  kQuery = 0,        ///< content/search queries (context traffic)
  kTrustRequest,     ///< trust value request
  kTrustResponse,    ///< trust value response
  kReport,           ///< transaction result report
  kAgentDiscovery,   ///< trusted-agent-list request/response
  kOnionRelay,       ///< hop carried on behalf of an onion circuit
  kKeyExchange,      ///< anonymity-key fetch handshake
  kControl,          ///< everything else (maintenance, probes)
  kCount
};

const char* to_string(MessageKind kind) noexcept;

class TrafficMetrics {
 public:
  void count(MessageKind kind, std::uint64_t messages = 1) noexcept;
  void reset() noexcept;

  std::uint64_t total() const noexcept;
  std::uint64_t of(MessageKind kind) const noexcept;
  /// Total excluding kQuery — the paper's "trust query process" traffic.
  std::uint64_t trust_traffic() const noexcept;

  std::string summary() const;

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(MessageKind::kCount)>
      counts_{};
};

}  // namespace hirep::net
