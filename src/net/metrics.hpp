// Traffic accounting.  The paper's primary efficiency metric (Figure 5) is
// "messages induced in the trust query process"; every overlay delivery
// increments one of these counters, tagged by purpose.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace hirep::net {

enum class MessageKind : std::uint8_t {
  kQuery = 0,        ///< content/search queries (context traffic)
  kTrustRequest,     ///< trust value request
  kTrustResponse,    ///< trust value response
  kReport,           ///< transaction result report
  kAgentDiscovery,   ///< trusted-agent-list request/response
  kOnionRelay,       ///< hop carried on behalf of an onion circuit
  kKeyExchange,      ///< anonymity-key fetch handshake
  kControl,          ///< everything else (maintenance, probes)
  kCount
};

const char* to_string(MessageKind kind) noexcept;

/// Typed protocol envelopes carried by the transport layer.  Every protocol
/// interaction is one of these; the transport tags each with the MessageKind
/// its hops are counted under (kind_of), so TrafficMetrics totals are
/// unchanged while per-envelope delivery outcomes become observable.
enum class EnvelopeType : std::uint8_t {
  kTrustRequest = 0,   ///< trust value request (peer -> agent)
  kTrustResponse,      ///< trust value response (agent -> peer)
  kReport,             ///< signed transaction report (peer -> agent)
  kAgentListRequest,   ///< trusted-agent-list request hop (§3.4.1 walk)
  kAgentListReply,     ///< trusted-agent-list reply (responder -> requestor)
  kKeyRotation,        ///< §3.5 key-rotation announcement (peer -> agent)
  kKeyExchange,        ///< Figure-3 anonymity-key handshake message
  kProbe,              ///< §3.4.3 backup-cache liveness probe
  kVotePoll,           ///< baseline: flooding trust poll
  kVoteReturn,         ///< baseline: vote returned along the reverse path
  kCount
};

const char* to_string(EnvelopeType type) noexcept;

/// The TrafficMetrics bucket an envelope's hops are counted under.
MessageKind kind_of(EnvelopeType type) noexcept;

/// Per-envelope-type delivery accounting maintained by the transport:
/// how many envelopes entered the transport, how many reached their
/// destination, how many were lost in transit, and the hop messages spent.
class EnvelopeMetrics {
 public:
  struct Counters {
    std::uint64_t sent = 0;        ///< envelopes handed to the transport
    std::uint64_t delivered = 0;   ///< envelopes that reached path end
    std::uint64_t dropped = 0;     ///< envelopes lost at some hop
    std::uint64_t duplicated = 0;  ///< hops transmitted twice by the policy
    std::uint64_t hop_messages = 0;///< transmissions spent (incl. duplicates)
    std::uint64_t suppressed = 0;  ///< duplicate copies discarded at a receiver
    std::uint64_t payload_bytes_sent = 0;       ///< bytes handed to transport
    std::uint64_t payload_bytes_delivered = 0;  ///< bytes that reached path end
    std::uint64_t payload_bytes_dropped = 0;    ///< bytes lost at some hop
  };

  void count_sent(EnvelopeType type) noexcept;
  void count_delivered(EnvelopeType type) noexcept;
  void count_dropped(EnvelopeType type) noexcept;
  void count_duplicated(EnvelopeType type) noexcept;
  void count_suppressed(EnvelopeType type) noexcept;
  void count_hops(EnvelopeType type, std::uint64_t messages) noexcept;

  /// Folds a per-batch delta into one type's counters and mirrors the
  /// non-zero fields to the obs registry — the batched transport's single
  /// flush point, equivalent to calling the count_* methods field by field.
  void add(EnvelopeType type, const Counters& delta) noexcept;

  void reset() noexcept;

  /// Folds another instance's counts into this one *without* re-mirroring
  /// to the obs registry (the source instance already mirrored at count
  /// time).  Used by the scale engine to merge per-lane transport metrics
  /// back into the main transport at a wave barrier.
  void absorb(const EnvelopeMetrics& other) noexcept;

  const Counters& of(EnvelopeType type) const noexcept;
  std::uint64_t total_sent() const noexcept;
  std::uint64_t total_delivered() const noexcept;
  std::uint64_t total_dropped() const noexcept;

  std::string summary() const;

 private:
  std::array<Counters, static_cast<std::size_t>(EnvelopeType::kCount)>
      counts_{};
};

/// Thread-safe: count() lands on a per-thread shard of relaxed atomics so
/// concurrent lanes of the scale engine never contend on one cache line;
/// readers sum across shards.  Totals are exact whenever no count() is
/// concurrently in flight (the engine only reads at wave barriers).
class TrafficMetrics {
 public:
  TrafficMetrics();
  TrafficMetrics(const TrafficMetrics& other);
  TrafficMetrics& operator=(const TrafficMetrics& other);
  TrafficMetrics(TrafficMetrics&&) noexcept = default;
  TrafficMetrics& operator=(TrafficMetrics&&) noexcept = default;

  void count(MessageKind kind, std::uint64_t messages = 1) noexcept;
  void reset() noexcept;

  std::uint64_t total() const noexcept;
  std::uint64_t of(MessageKind kind) const noexcept;
  /// Total excluding kQuery — the paper's "trust query process" traffic.
  std::uint64_t trust_traffic() const noexcept;

  std::string summary() const;

 private:
  static constexpr std::size_t kShards = 16;  // power of two
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>,
               static_cast<std::size_t>(MessageKind::kCount)>
        counts{};
  };
  Shard& shard() noexcept;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace hirep::net
