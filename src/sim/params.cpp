#include "sim/params.hpp"

#include "sim/scenario.hpp"

namespace hirep::sim {

Params Params::from_config(const util::Config& c) {
  return Scenario::from_config(c).params();
}

net::DeliveryConfig Params::delivery_config() const {
  net::DeliveryConfig config;
  config.policy = *net::policy_kind_by_name(delivery);
  config.faults.drop_rate = drop_rate;
  config.faults.duplicate_rate = duplicate_rate;
  config.faults.delay_min_ms = fault_delay_min_ms;
  config.faults.delay_max_ms = fault_delay_max_ms;
  return config;
}

core::HirepOptions Params::hirep_options() const {
  core::HirepOptions o;
  o.nodes = network_size;
  o.average_degree = neighbors_per_node;
  o.rsa_bits = rsa_bits;
  o.trusted_agents = trusted_agents;
  o.onion_relays = relays_per_onion;
  o.discovery_tokens = tokens;
  o.discovery_ttl = discovery_ttl;
  o.expertise_alpha = expertise_alpha;
  o.eviction_threshold = eviction_threshold;
  o.agent_model = agent_model;
  o.crypto = crypto_mode == "full" ? core::CryptoMode::kFull
                                   : core::CryptoMode::kFast;
  o.world.trustable_ratio = trustable_ratio;
  o.world.agent_capable_ratio = agent_capable_ratio;
  o.world.malicious_ratio = malicious_ratio;
  o.world.good_rating_lo = good_rating_lo;
  o.world.good_rating_hi = good_rating_hi;
  o.world.bad_rating_lo = bad_rating_lo;
  o.world.bad_rating_hi = bad_rating_hi;
  o.latency.link_min_ms = link_min_ms;
  o.latency.link_max_ms = link_max_ms;
  o.latency.processing_ms = processing_ms;
  o.delivery = delivery_config();
  o.reliable.max_attempts = retry_max_attempts;
  o.reliable.timeout_ms = retry_timeout_ms;
  o.reliable.backoff_ms = retry_backoff_ms;
  o.reliable.jitter_ms = retry_jitter_ms;
  o.recovery.suspicion_threshold = suspicion_threshold;
  o.recovery.min_quorum = min_quorum;
  o.seed = seed;
  return o;
}

baselines::VotingOptions Params::voting_options() const {
  baselines::VotingOptions o;
  o.nodes = network_size;
  o.average_degree = neighbors_per_node;
  o.ttl = voting_ttl;
  o.world.trustable_ratio = trustable_ratio;
  o.world.agent_capable_ratio = agent_capable_ratio;
  o.world.malicious_ratio = malicious_ratio;
  o.world.good_rating_lo = good_rating_lo;
  o.world.good_rating_hi = good_rating_hi;
  o.world.bad_rating_lo = bad_rating_lo;
  o.world.bad_rating_hi = bad_rating_hi;
  o.latency.link_min_ms = link_min_ms;
  o.latency.link_max_ms = link_max_ms;
  o.latency.processing_ms = processing_ms;
  o.delivery = delivery_config();
  o.seed = seed;
  return o;
}

baselines::TrustMeOptions Params::trustme_options() const {
  baselines::TrustMeOptions o;
  o.nodes = network_size;
  o.average_degree = neighbors_per_node;
  o.ttl = voting_ttl;
  o.model = agent_model;
  o.world.trustable_ratio = trustable_ratio;
  o.world.agent_capable_ratio = agent_capable_ratio;
  o.world.malicious_ratio = malicious_ratio;
  o.world.good_rating_lo = good_rating_lo;
  o.world.good_rating_hi = good_rating_hi;
  o.world.bad_rating_lo = bad_rating_lo;
  o.world.bad_rating_hi = bad_rating_hi;
  o.latency.link_min_ms = link_min_ms;
  o.latency.link_max_ms = link_max_ms;
  o.latency.processing_ms = processing_ms;
  o.delivery = delivery_config();
  o.seed = seed;
  return o;
}

namespace {

/// The world/latency/delivery fields every baseline shares.
template <typename Options>
void fill_common(Options& o, const Params& p) {
  o.nodes = p.network_size;
  o.average_degree = p.neighbors_per_node;
  o.world.trustable_ratio = p.trustable_ratio;
  o.world.agent_capable_ratio = p.agent_capable_ratio;
  o.world.malicious_ratio = p.malicious_ratio;
  o.world.good_rating_lo = p.good_rating_lo;
  o.world.good_rating_hi = p.good_rating_hi;
  o.world.bad_rating_lo = p.bad_rating_lo;
  o.world.bad_rating_hi = p.bad_rating_hi;
  o.latency.link_min_ms = p.link_min_ms;
  o.latency.link_max_ms = p.link_max_ms;
  o.latency.processing_ms = p.processing_ms;
  o.delivery = p.delivery_config();
  o.seed = p.seed;
}

}  // namespace

baselines::AbsoluteTrustOptions Params::absolute_trust_options() const {
  baselines::AbsoluteTrustOptions o;
  fill_common(o, *this);
  return o;
}

baselines::DifferentialGossipOptions Params::differential_gossip_options()
    const {
  baselines::DifferentialGossipOptions o;
  fill_common(o, *this);
  return o;
}

util::Table Params::table1() const {
  util::Table t({"name", "value", "provenance", "description"});
  auto row = [&t](const std::string& name, util::Table::Cell value,
                  const std::string& prov, const std::string& desc) {
    t.add_row({name, std::move(value), prov, desc});
  };
  row("Network Size", static_cast<std::int64_t>(network_size), "inferred",
      "Number of peers in the network");
  row("neighbors per node", neighbors_per_node, "inferred (Fig5 sweeps 2/3/4)",
      "Average number of neighbors each peer");
  row("Good rating", "0.6-1.0", "stated", "Scope of good reputation rating");
  row("Bad rating", "0.0-0.4", "stated", "Scope of bad reputation rating");
  row("Relays in an onion", static_cast<std::int64_t>(relays_per_onion),
      "inferred (Fig8 sweeps 5/7/10)", "Agencies a peer includes in its onion");
  row("Trusted agents", static_cast<std::int64_t>(trusted_agents),
      "inferred", "Trusted agents on a peer's trusted agent list");
  row("Poor performance agents", malicious_ratio, "stated (10%)",
      "Agents which cannot make proper reputation of peers");
  row("TTL", static_cast<std::int64_t>(voting_ttl), "stated (4)",
      "TTL limit used in pure voting flooding process");
  row("Token number", static_cast<std::int64_t>(tokens), "stated (10)",
      "Initial number of tokens for obtaining reputation agent lists");
  row("trustable ratio", trustable_ratio, "stated 'randomly assigned'",
      "Fraction of peers whose true trust value is 1");
  row("agent-capable ratio", agent_capable_ratio, "inferred",
      "Fraction of peers with bandwidth > 64 kbit/s");
  row("expertise alpha", expertise_alpha, "inferred (alpha in (0,1))",
      "EWMA weight in the agent-expertise update");
  row("eviction threshold", eviction_threshold,
      "Fig6: hirep-4/6/8 = 0.4/0.6/0.8", "Expertise below this evicts an agent");
  row("discovery TTL", static_cast<std::int64_t>(discovery_ttl),
      "stated (recommend 7)", "TTL of the trusted-agent-list request");
  return t;
}

}  // namespace hirep::sim
