#include "sim/attacks.hpp"

#include <algorithm>
#include <map>

#include "onion/relay.hpp"

namespace hirep::sim {

bool attempt_report_spoof(core::HirepSystem& system, net::NodeIndex attacker,
                          net::NodeIndex victim, net::NodeIndex agent_ip,
                          net::NodeIndex subject) {
  auto* agent = system.agent_at(agent_ip);
  if (agent == nullptr) return false;
  const auto& ids = system.identities();
  const crypto::Identity& victim_id = ids.at(victim);
  const crypto::Identity& attacker_id = ids.at(attacker);
  const crypto::NodeId subject_id = ids.at(subject).node_id();

  // The victim is known to the agent (its SP is on the public key list) —
  // the strongest position for the forger.
  agent->register_key(victim_id.node_id(), victim_id.signature_public());

  // Forge: body signed by the attacker, reporter field claims the victim.
  core::TransactionReport forged =
      core::build_report(attacker_id, subject_id, 1.0, system.rng()());
  forged.reporter = victim_id.node_id();

  const auto sp = agent->lookup_key(forged.reporter);
  if (!sp) return false;
  // The agent verifies the signature against the victim's SP; acceptance
  // would mean the spoof succeeded.
  return core::verify_report(*sp, forged).has_value();
}

namespace {

// A man in the middle that substitutes its own anonymity key in step 2 of
// the Figure-3 handshake.  Step 3 still travels to the honest relay's IP,
// so the confirmation must come from the honest relay — which cannot
// decrypt a verification encrypted to the attacker's key.
class MitmRelay final : public onion::RelayEndpoint {
 public:
  MitmRelay(net::NodeIndex honest_ip, const crypto::Identity* honest,
            const crypto::Identity* attacker)
      : honest_ip_(honest_ip), honest_(honest), attacker_(attacker) {}

  net::NodeIndex ip() const override { return honest_ip_; }

  util::Bytes key_response(util::Rng& rng,
                           const crypto::RsaPublicKey& requestor_ap,
                           net::NodeIndex requestor_ip) override {
    (void)requestor_ip;
    util::ByteWriter w;
    w.u8(0x01);  // kTagKeyResponse
    w.blob(attacker_->anonymity_public().serialize());  // substituted key
    w.u32(honest_ip_);  // still claims the honest relay's address
    w.u64(rng());
    return crypto::rsa_encrypt_bytes(rng, requestor_ap, w.bytes());
  }

  std::optional<util::Bytes> key_confirm(
      util::Rng& rng, const util::Bytes& verification) override {
    (void)rng;
    // The verification is addressed to IP_k, i.e. the honest relay, which
    // holds AR_k — not the attacker's AR.  Decryption fails, no
    // confirmation is produced.
    const auto plain =
        crypto::rsa_decrypt_bytes(honest_->anonymity_private(), verification);
    if (!plain) return std::nullopt;
    // (Unreachable for a substituted key; kept for completeness.)
    return std::nullopt;
  }

 private:
  net::NodeIndex honest_ip_;
  const crypto::Identity* honest_;
  const crypto::Identity* attacker_;
};

}  // namespace

bool attempt_mitm_key_substitution(core::HirepSystem& system,
                                   net::NodeIndex requestor,
                                   net::NodeIndex relay,
                                   net::NodeIndex attacker) {
  const auto& ids = system.identities();
  MitmRelay mitm(relay, &ids.at(relay), &ids.at(attacker));
  const auto info = onion::fetch_anonymity_key(
      system.overlay(), system.rng(), ids.at(requestor), requestor, mitm);
  return info.has_value();  // acceptance == successful MITM
}

bool attempt_onion_replay(core::HirepSystem& system, net::NodeIndex owner) {
  auto& p = system.peer(owner);
  auto& rng = system.rng();
  const onion::Onion stale = p.issue_onion(rng);
  const onion::Onion fresh = p.issue_onion(rng);

  const util::Bytes payload{0x42};
  // The owner performs its periodic onion refresh (§3.3: sq indicates the
  // age of the onion; holders keep only the freshest): everything older
  // than the current onion is revoked.
  system.router().sequence_guard().revoke_before(p.node_id(), fresh.sq);
  const auto first = system.router().route(owner, fresh, payload,
                                           net::MessageKind::kControl);
  if (!first.delivered) return false;
  // The attacker replays a captured pre-refresh onion.
  const auto replay = system.router().route(owner, stale, payload,
                                            net::MessageKind::kControl);
  return replay.delivered;
}

std::vector<std::vector<core::AgentEntry>> hostile_recommendations(
    core::HirepSystem& system, const std::vector<net::NodeIndex>& good_agents,
    const std::vector<net::NodeIndex>& shill_agents, std::size_t list_count) {
  const auto& ids = system.identities();
  auto make_entry = [&](net::NodeIndex v, double weight) {
    core::AgentEntry e;
    e.agent_id = ids.at(v).node_id();
    e.agent_key = ids.at(v).signature_public();
    e.weight = weight;
    return e;
  };
  std::vector<std::vector<core::AgentEntry>> lists;
  lists.reserve(list_count);
  for (std::size_t i = 0; i < list_count; ++i) {
    std::vector<core::AgentEntry> list;
    for (net::NodeIndex v : shill_agents) list.push_back(make_entry(v, 1.0));
    for (net::NodeIndex v : good_agents) list.push_back(make_entry(v, 0.0));
    lists.push_back(std::move(list));
  }
  return lists;
}

std::vector<std::pair<net::NodeIndex, std::size_t>> agent_popularity(
    core::HirepSystem& system) {
  std::map<net::NodeIndex, std::size_t> counts;
  for (std::size_t v = 0; v < system.node_count(); ++v) {
    for (const auto& entry :
         system.peer(static_cast<net::NodeIndex>(v)).agents().entries()) {
      const auto ip = system.ip_of(entry.agent_id);
      if (ip) ++counts[*ip];
    }
  }
  std::vector<std::pair<net::NodeIndex, std::size_t>> out(counts.begin(),
                                                          counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

std::vector<net::NodeIndex> dos_top_agents(core::HirepSystem& system,
                                           std::size_t count) {
  std::vector<net::NodeIndex> victims;
  for (const auto& [ip, refs] : agent_popularity(system)) {
    if (victims.size() >= count) break;
    if (system.agent_online(ip)) {
      system.set_agent_online(ip, false);
      victims.push_back(ip);
    }
  }
  return victims;
}

std::vector<net::NodeIndex> sybil_corrupt_agents(core::HirepSystem& system,
                                                 std::size_t count) {
  auto popularity = agent_popularity(system);
  std::reverse(popularity.begin(), popularity.end());  // least referenced first
  std::vector<net::NodeIndex> converted;
  for (const auto& [ip, refs] : popularity) {
    if (converted.size() >= count) break;
    if (!system.truth().poor_evaluator(ip)) {
      system.truth().set_malicious(ip, true);
      converted.push_back(ip);
    }
  }
  return converted;
}

}  // namespace hirep::sim
