#include "sim/bench_json.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <variant>

#include "util/json.hpp"

namespace hirep::sim {

namespace {

void write_cell(util::JsonWriter& w, const util::Table::Cell& cell) {
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          w.value(std::string_view(v));
        } else {
          w.value(v);
        }
      },
      cell);
}

void write_metrics(util::JsonWriter& w, const obs::Snapshot& snapshot) {
  w.begin_object();

  w.key("counters");
  w.begin_array();
  for (const auto& c : snapshot.counters) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(c.name));
    w.key("value");
    w.value(c.value);
    w.end_object();
  }
  w.end_array();

  w.key("gauges");
  w.begin_array();
  for (const auto& g : snapshot.gauges) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(g.name));
    w.key("value");
    w.value(g.value);
    w.key("high_water");
    w.value(g.high_water);
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const auto& h : snapshot.histograms) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(h.name));
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t b : h.buckets) w.value(b);
    w.end_array();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.end_object();
  }
  w.end_array();

  w.key("timers");
  w.begin_array();
  for (const auto& t : snapshot.timers) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(t.name));
    w.key("count");
    w.value(t.count);
    w.key("total_ns");
    w.value(t.total_ns);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

}  // namespace

std::string json_output_path(const util::Config& cfg) {
  return cfg.get_string(kJsonOutputKey, "");
}

void write_bench_json(std::ostream& out, const std::string& title,
                      const ExperimentResult& result, const util::Config& cfg,
                      const obs::Snapshot& snapshot) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kBenchSchema);
  w.key("title");
  w.value(std::string_view(title));

  w.key("config");
  w.begin_object();
  for (const auto& [key, value] : cfg.entries()) {
    w.key(key);
    w.value(std::string_view(value));
  }
  w.end_object();

  w.key("table");
  w.begin_object();
  w.key("columns");
  w.begin_array();
  for (const auto& col : result.table.header()) w.value(std::string_view(col));
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (std::size_t r = 0; r < result.table.rows(); ++r) {
    w.begin_array();
    for (std::size_t c = 0; c < result.table.columns(); ++c) {
      write_cell(w, result.table.cell_at(r, c));
    }
    w.end_array();
  }
  w.end_array();
  w.end_object();

  w.key("checks");
  w.begin_array();
  for (const auto& check : result.checks) {
    w.begin_object();
    w.key("claim");
    w.value(std::string_view(check.claim));
    w.key("holds");
    w.value(check.holds);
    w.key("detail");
    w.value(std::string_view(check.detail));
    w.end_object();
  }
  w.end_array();
  w.key("all_hold");
  w.value(all_hold(result));

  // Friendly millisecond view of the phase timers; the raw nanosecond
  // values stay under metrics.timers for exact comparison.
  w.key("phases");
  w.begin_array();
  for (const auto& t : snapshot.timers) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(t.name));
    w.key("count");
    w.value(t.count);
    w.key("total_ms");
    w.value(static_cast<double>(t.total_ns) * 1e-6);
    w.end_object();
  }
  w.end_array();

  w.key("metrics");
  write_metrics(w, snapshot);

  w.end_object();
  out << w.str() << '\n';
}

void write_bench_json_file(const std::string& path, const std::string& title,
                           const ExperimentResult& result,
                           const util::Config& cfg,
                           const obs::Snapshot& snapshot) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open json output file: " + path);
  }
  write_bench_json(out, title, result, cfg, snapshot);
}

}  // namespace hirep::sim
