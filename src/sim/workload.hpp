// Transaction workload generation: who asks about whom.
//
// The paper's evaluation uses uniformly random requestor/provider pairs
// ("The trust making process is started with randomly selecting a peer as
// a potential service provider", §5.2).  The Zipf generator models the
// skewed content popularity of real file-sharing systems (the KaZaA
// pollution scenario that motivates the paper) and drives the file-sharing
// example.
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace hirep::sim {

struct Transaction {
  net::NodeIndex requestor = net::kInvalidNode;
  net::NodeIndex provider = net::kInvalidNode;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(std::size_t nodes, std::uint64_t seed);

  /// Uniform requestor, uniform provider != requestor.
  Transaction uniform();
  std::vector<Transaction> uniform_batch(std::size_t count);

  /// Uniform requestor; provider drawn Zipf(s) over a fixed random
  /// popularity ranking of nodes (rank-1 node most popular).
  Transaction zipf(double s);
  std::vector<Transaction> zipf_batch(std::size_t count, double s);

  std::size_t nodes() const noexcept { return nodes_; }
  util::Rng& rng() noexcept { return rng_; }

 private:
  net::NodeIndex zipf_provider(double s);

  std::size_t nodes_;
  util::Rng rng_;
  std::vector<net::NodeIndex> popularity_order_;
  // cached CDF per exponent (rebuilt when s changes)
  double cached_s_ = -1.0;
  std::vector<double> cdf_;
};

}  // namespace hirep::sim
