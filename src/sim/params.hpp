// Table-1 simulation parameters, their provenance, and conversion into the
// per-system option structs.  Every bench binary builds its configuration
// through here so `key=value` CLI overrides behave identically everywhere.
//
// Provenance: the available text of the paper has a partially garbled
// Table 1 (the value column reads "60 10% 4 10").  Values marked
// (inferred) below are reconstructed from the prose and the figures; all
// are overridable.
#pragma once

#include <cstdint>
#include <string>

#include "baselines/absolute_trust.hpp"
#include "baselines/differential_gossip.hpp"
#include "baselines/pure_voting.hpp"
#include "baselines/trustme.hpp"
#include "hirep/system.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace hirep::sim {

struct Params {
  // ---- Table 1 -------------------------------------------------------
  std::size_t network_size = 1000;   ///< Network Size (inferred)
  double neighbors_per_node = 4.0;   ///< avg neighbors (inferred; Fig5 sweeps 2/3/4)
  double good_rating_lo = 0.6;       ///< Good rating: 0.6–1 (stated)
  double good_rating_hi = 1.0;
  double bad_rating_lo = 0.0;        ///< Bad rating: 0–0.4 (stated)
  double bad_rating_hi = 0.4;
  std::size_t relays_per_onion = 5;  ///< Fig8 sweeps 5/7/10 (inferred default 5)
  std::size_t trusted_agents = 10;   ///< c (inferred from token number 10)
  double malicious_ratio = 0.10;     ///< Poor performance agents: 10% (stated)
  std::uint32_t voting_ttl = 4;      ///< TTL 4 in the polling sim (stated)
  std::uint32_t tokens = 10;         ///< Token number 10 (stated)

  // ---- beyond Table 1 (documented inferences / engineering knobs) ----
  double trustable_ratio = 0.5;      ///< nodes "randomly assigned" (stated)
  double agent_capable_ratio = 0.4;  ///< fraction with bandwidth > 64k (inferred)
  double expertise_alpha = 0.3;      ///< alpha in (0,1), unspecified
  double eviction_threshold = 0.4;   ///< hirep-4 default (Fig6 sweeps .4/.6/.8)
  std::uint32_t discovery_ttl = 7;   ///< §3.4.1 recommends 7
  unsigned rsa_bits = 64;            ///< simulation default; tests use >= 128
  std::string crypto_mode = "fast";  ///< "fast" | "full"
  std::string agent_model = "ewma";
  std::string delivery = "instant";  ///< "instant" | "latency" | "faulty"
  double drop_rate = 0.0;            ///< faulty: per-hop loss probability
  double duplicate_rate = 0.0;       ///< faulty: per-hop duplication probability
  double fault_delay_min_ms = 0.0;   ///< faulty: extra per-hop delay range
  double fault_delay_max_ms = 0.0;
  double link_min_ms = 10.0;
  double link_max_ms = 40.0;
  double processing_ms = 1.0;
  std::uint64_t seed = 1;
  std::size_t seeds = 1;             ///< independent repetitions to average
  std::size_t transactions = 200;    ///< default horizon (figures override)
  std::size_t mse_window = 50;       ///< sliding window for MSE-vs-time curves
  /// Active-community workload: requestors (resp. providers) are drawn from
  /// a pool of this many peers, so each active peer accumulates enough
  /// transactions for its expertise filtering to engage at the paper's
  /// transaction counts.  0 = whole population.
  std::size_t requestor_pool = 50;
  std::size_t provider_pool = 100;
  /// Scale engine: how run_transactions() executes a batch ("parallel" |
  /// "serial" | "sharded"; results are byte-identical, see sim::Scenario).
  std::string execution = "parallel";
  std::size_t threads = 0;  ///< worker threads, 0 = hardware concurrency
  std::size_t shards = 0;   ///< sharded engine partitions, 0 = thread count
  std::size_t wave_window = 0;  ///< max transactions per wave, 0 = unbounded

  // ---- reliable request channel (src/net/reliable.hpp) ----------------
  // Defaults are the golden-safe zero-retry configuration: one attempt, no
  // deadline, no backoff — call-for-call identical to a bare send.
  std::uint32_t retry_max_attempts = 1;  ///< attempts per request (1 = no retry)
  double retry_timeout_ms = 0.0;         ///< reply deadline (0 = none)
  double retry_backoff_ms = 0.0;         ///< exponential-backoff base
  double retry_jitter_ms = 0.0;          ///< seeded jitter added to each backoff

  // ---- agent failover / recovery (§3.4.3 + graceful degradation) ------
  std::uint32_t suspicion_threshold = 3; ///< consecutive timeouts to quarantine
  std::size_t min_quorum = 0;            ///< live-agent quorum (0 = no degradation)

  // ---- chaos engine (src/sim/chaos.hpp) --------------------------------
  // All schedule times are transaction ticks; 0 means "never" for the
  // *_at knobs.  chaos=off compiles everything out of the run entirely.
  std::string chaos = "off";             ///< "off" | "on"
  std::uint64_t chaos_seed = 0;          ///< 0 = derive from the master seed
  double chaos_crash_rate = 0.0;         ///< per-node per-tick crash probability
  double chaos_mean_downtime = 20.0;     ///< mean ticks a crashed node stays down
  std::size_t chaos_crash_at = 0;        ///< scripted mass-crash tick (0 = never)
  std::size_t chaos_restart_at = 0;      ///< scripted mass-restart tick (0 = never)
  double chaos_agent_crash_fraction = 0.0;  ///< agents crashed at chaos_crash_at
  std::size_t chaos_partition_at = 0;    ///< group partition start tick (0 = never)
  std::size_t chaos_heal_at = 0;         ///< partition heal tick (0 = never)
  double chaos_partition_fraction = 0.0; ///< nodes severed onto the minority side
  std::size_t chaos_burst_at = 0;        ///< burst-loss window start tick (0 = never)
  std::size_t chaos_burst_until = 0;     ///< burst-loss window end tick
  double chaos_burst_drop = 0.0;         ///< per-hop drop probability in the window
  double chaos_slowdown_fraction = 0.0;  ///< fraction of nodes slowed down
  double chaos_slowdown_ms = 0.0;        ///< extra per-hop delay for slowed nodes

  // ---- adversary strategy engine (src/sim/adversary.hpp) ---------------
  // Tick-scheduled attack campaigns; a strategy is armed by its count knob
  // and fires at its *_at tick (0 = at install, before the first
  // transaction).  adversary=off keeps every knob inert: install_adversary
  // returns nullptr and the run is bit-identical to a build without the
  // engine.  The static Figure-7 strategy is malicious_ratio itself,
  // applied at world bootstrap — the engine performs no runtime action
  // for it.
  std::string adversary = "off";           ///< "off" | "on"
  std::uint64_t adversary_seed = 0;        ///< 0 = derive from the master seed
  std::size_t adversary_ring_size = 0;     ///< collusion-ring members (0 = off)
  std::size_t adversary_ring_at = 0;       ///< ring formation tick (0 = install)
  std::size_t adversary_ring_targets = 4;  ///< good providers bad-mouthed
  std::size_t adversary_sybil_count = 0;   ///< fresh identities per wave (0 = off)
  std::size_t adversary_sybil_at = 0;      ///< first wave tick (0 = install)
  std::size_t adversary_sybil_period = 0;  ///< ticks between waves (0 = one wave)
  std::size_t adversary_sybil_corrupt = 0; ///< fringe agents corrupted per wave
  std::size_t adversary_whitewash_count = 0;    ///< tracked whitewashers (0 = off)
  double adversary_whitewash_threshold = 0.3;   ///< rotate below this estimate
  std::size_t adversary_whitewash_cooldown = 10;///< min ticks between rotations
  std::size_t adversary_oscillator_count = 0;   ///< on-off peers (0 = off)
  double adversary_oscillator_on = 0.7;    ///< defect once estimate >= this
  std::size_t adversary_oscillator_burst = 5;   ///< defection burst (ticks)
  std::size_t adversary_front_count = 0;   ///< front peers recruited (0 = off)
  std::size_t adversary_front_at = 0;      ///< front recruitment tick (0 = install)

  /// Applies key=value overrides (keys match the field names above).
  /// Thin back-compat wrapper over sim::Scenario::from_config — new code
  /// should build a Scenario (table-driven parsing + whole-config
  /// validation) and use its projections.
  static Params from_config(const util::Config& config);

  core::HirepOptions hirep_options() const;
  baselines::VotingOptions voting_options() const;
  baselines::TrustMeOptions trustme_options() const;
  baselines::AbsoluteTrustOptions absolute_trust_options() const;
  baselines::DifferentialGossipOptions differential_gossip_options() const;
  /// The delivery policy every system above is built with.
  net::DeliveryConfig delivery_config() const;

  /// The Table-1 reproduction: name, value, provenance rows.
  util::Table table1() const;
};

}  // namespace hirep::sim
