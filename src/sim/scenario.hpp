// sim::Scenario — the one way to configure a simulation run.
//
// Unifies the former split between sim::Params (bench-side key=value bag)
// and core::HirepOptions (engine-side struct): a Scenario owns the full
// parameter set, validates it as a whole, and projects it into every
// per-system option struct plus the scale engine's core::Executor.
//
//   auto sc = sim::Scenario()
//                 .network_size(10'000)
//                 .crypto("fast")
//                 .execution("parallel")
//                 .validate();
//   core::HirepSystem system(sc.hirep_options());
//   auto records = system.run_transactions(pairs, sc.execution_policy());
//
// CLI parsing is table-driven: every option is declared once in
// option_table() (name, typed member binding, help text), and the same
// table generates from_config(), --help rendering, and the known-key set
// for the unused-parameter detector in bench_common.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sim/params.hpp"

namespace hirep::sim {

/// One declaratively-registered simulation option: CLI key, typed member
/// binding into Params, and help text.  Adding a field = adding one row.
struct OptionSpec {
  // std::size_t also covers the std::uint64_t fields and std::uint32_t the
  // unsigned ones (enforced by static_asserts in scenario.cpp) — listing
  // them separately would duplicate variant alternatives on LP64.
  using Field =
      std::variant<std::size_t Params::*, double Params::*,
                   std::uint32_t Params::*, std::string Params::*>;
  const char* name;
  Field field;
  const char* help;
};

class Scenario {
 public:
  Scenario() = default;
  explicit Scenario(Params params) : params_(std::move(params)) {}

  /// The full declarative option table (one row per Params field).
  static const std::vector<OptionSpec>& option_table();

  /// Builds a Scenario from key=value overrides and validates it.
  /// Throws std::invalid_argument on unparsable values or invalid
  /// combinations.
  static Scenario from_config(const util::Config& config);

  /// Auto-generated from option_table(): one "name=<type> (default) help"
  /// line per option, for bench --help output.
  static std::string help_text();

  /// Whole-configuration semantic validation: rejects impossible
  /// combinations (e.g. provider_pool > network_size, relays >= network
  /// size, rating ranges inverted).  Returns *this for chaining.
  const Scenario& validate() const;
  Scenario& validate() {
    static_cast<const Scenario&>(*this).validate();
    return *this;
  }

  // -- fluent builder (most-used knobs; params() reaches everything) -------
  Scenario& network_size(std::size_t n) { params_.network_size = n; return *this; }
  Scenario& transactions(std::size_t n) { params_.transactions = n; return *this; }
  Scenario& seed(std::uint64_t s) { params_.seed = s; return *this; }
  Scenario& seeds(std::size_t n) { params_.seeds = n; return *this; }
  Scenario& crypto(std::string mode) { params_.crypto_mode = std::move(mode); return *this; }
  Scenario& delivery(std::string policy) { params_.delivery = std::move(policy); return *this; }
  Scenario& execution(std::string mode) { params_.execution = std::move(mode); return *this; }
  Scenario& threads(std::size_t n) { params_.threads = n; return *this; }
  Scenario& shards(std::size_t n) { params_.shards = n; return *this; }
  Scenario& wave_window(std::size_t n) { params_.wave_window = n; return *this; }
  Scenario& trusted_agents(std::size_t c) { params_.trusted_agents = c; return *this; }
  Scenario& malicious_ratio(double r) { params_.malicious_ratio = r; return *this; }

  Params& params() noexcept { return params_; }
  const Params& params() const noexcept { return params_; }

  // -- projections ---------------------------------------------------------
  core::HirepOptions hirep_options() const { return params_.hirep_options(); }
  baselines::VotingOptions voting_options() const {
    return params_.voting_options();
  }
  baselines::TrustMeOptions trustme_options() const {
    return params_.trustme_options();
  }
  net::DeliveryConfig delivery_config() const {
    return params_.delivery_config();
  }
  /// The scale engine's Executor, fully validated: execution=parallel or
  /// =sharded applies under delivery=instant with chaos=off; lossy/delayed
  /// transports and chaos fault schedules are order-dependent, so either
  /// downgrades to serial execution with a logged diagnostic (same
  /// results, one thread).  This is the ONLY construction path bench mains
  /// and examples should use — never hand-build a core::Executor.
  core::Executor execution_policy() const;
  util::Table table1() const { return params_.table1(); }

 private:
  Params params_;
};

}  // namespace hirep::sim
