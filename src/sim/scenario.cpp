#include "sim/scenario.hpp"

#include <sstream>
#include <stdexcept>
#include <type_traits>

namespace hirep::sim {

// OptionSpec::Field folds std::uint64_t members into the std::size_t
// alternative and unsigned members into std::uint32_t; make the layout
// assumption loud rather than silently mis-binding on an exotic ABI.
static_assert(std::is_same_v<std::size_t, std::uint64_t>,
              "OptionSpec::Field expects size_t == uint64_t");
static_assert(std::is_same_v<unsigned, std::uint32_t>,
              "OptionSpec::Field expects unsigned == uint32_t");

namespace {

void apply_option(Params& p, const OptionSpec& spec, const util::Config& c) {
  std::visit(
      [&](auto field) {
        using T = std::remove_reference_t<decltype(p.*field)>;
        if constexpr (std::is_same_v<T, double>) {
          p.*field = c.get_double(spec.name, p.*field);
        } else if constexpr (std::is_same_v<T, std::string>) {
          p.*field = c.get_string(spec.name, p.*field);
        } else {
          p.*field = static_cast<T>(
              c.get_int(spec.name, static_cast<std::int64_t>(p.*field)));
        }
      },
      spec.field);
}

std::string type_and_default(const Params& defaults, const OptionSpec& spec) {
  std::ostringstream out;
  std::visit(
      [&](auto field) {
        using T = std::remove_reference_t<decltype(defaults.*field)>;
        if constexpr (std::is_same_v<T, double>) {
          out << "float (" << defaults.*field << ")";
        } else if constexpr (std::is_same_v<T, std::string>) {
          out << "string (" << defaults.*field << ")";
        } else {
          out << "int (" << defaults.*field << ")";
        }
      },
      spec.field);
  return out.str();
}

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

}  // namespace

const std::vector<OptionSpec>& Scenario::option_table() {
  static const std::vector<OptionSpec> table = {
      // ---- Table 1 -------------------------------------------------------
      {"network_size", &Params::network_size, "number of peers in the network"},
      {"neighbors_per_node", &Params::neighbors_per_node,
       "average overlay degree (Fig5 sweeps 2/3/4)"},
      {"good_rating_lo", &Params::good_rating_lo,
       "lower bound of a good peer's rating"},
      {"good_rating_hi", &Params::good_rating_hi,
       "upper bound of a good peer's rating"},
      {"bad_rating_lo", &Params::bad_rating_lo,
       "lower bound of a bad peer's rating"},
      {"bad_rating_hi", &Params::bad_rating_hi,
       "upper bound of a bad peer's rating"},
      {"relays_per_onion", &Params::relays_per_onion,
       "onion relays per circuit (Fig8 sweeps 5/7/10)"},
      {"trusted_agents", &Params::trusted_agents,
       "trusted agents per peer (c)"},
      {"malicious_ratio", &Params::malicious_ratio,
       "fraction of poor-performance agents"},
      {"voting_ttl", &Params::voting_ttl, "TTL of the pure-voting flood"},
      {"tokens", &Params::tokens, "discovery tokens per walk"},
      // ---- beyond Table 1 ------------------------------------------------
      {"trustable_ratio", &Params::trustable_ratio,
       "fraction of peers whose true trust is 1"},
      {"agent_capable_ratio", &Params::agent_capable_ratio,
       "fraction of peers with agent-grade bandwidth"},
      {"expertise_alpha", &Params::expertise_alpha,
       "EWMA weight of the agent-expertise update"},
      {"eviction_threshold", &Params::eviction_threshold,
       "expertise below this evicts an agent (Fig6: 0.4/0.6/0.8)"},
      {"discovery_ttl", &Params::discovery_ttl,
       "TTL of the trusted-agent-list request (§3.4.1)"},
      {"rsa_bits", &Params::rsa_bits, "RSA modulus size"},
      {"crypto", &Params::crypto_mode, "crypto mode: fast|full"},
      {"agent_model", &Params::agent_model,
       "agent-side computation model (ewma|average|beta)"},
      {"delivery", &Params::delivery,
       "envelope delivery: instant|latency|faulty"},
      {"drop_rate", &Params::drop_rate, "faulty: per-hop loss probability"},
      {"duplicate_rate", &Params::duplicate_rate,
       "faulty: per-hop duplication probability"},
      {"fault_delay_min_ms", &Params::fault_delay_min_ms,
       "faulty: minimum extra per-hop delay"},
      {"fault_delay_max_ms", &Params::fault_delay_max_ms,
       "faulty: maximum extra per-hop delay"},
      {"link_min_ms", &Params::link_min_ms, "latency: minimum link delay"},
      {"link_max_ms", &Params::link_max_ms, "latency: maximum link delay"},
      {"processing_ms", &Params::processing_ms,
       "latency: per-hop processing time"},
      {"seed", &Params::seed, "master RNG seed"},
      {"seeds", &Params::seeds, "independent repetitions to average"},
      {"transactions", &Params::transactions, "transaction horizon"},
      {"mse_window", &Params::mse_window,
       "sliding window of the MSE-vs-time curves"},
      {"requestor_pool", &Params::requestor_pool,
       "active requestor community size (0 = whole population)"},
      {"provider_pool", &Params::provider_pool,
       "active provider community size (0 = whole population)"},
      // ---- scale engine --------------------------------------------------
      {"execution", &Params::execution,
       "transaction engine: parallel|serial|sharded (concurrent engines "
       "need delivery=instant; byte-identical results either way)"},
      {"threads", &Params::threads,
       "worker threads for execution=parallel|sharded (0 = hardware)"},
      {"shards", &Params::shards,
       "agent partitions for execution=sharded (0 = thread count)"},
      {"wave_window", &Params::wave_window,
       "max transactions per engine wave (0 = unbounded)"},
      // ---- reliable request channel --------------------------------------
      {"retry_max_attempts", &Params::retry_max_attempts,
       "attempts per reliable request (1 = fire once, no retry)"},
      {"retry_timeout_ms", &Params::retry_timeout_ms,
       "reliable-request reply deadline (0 = none)"},
      {"retry_backoff_ms", &Params::retry_backoff_ms,
       "exponential-backoff base between retries"},
      {"retry_jitter_ms", &Params::retry_jitter_ms,
       "seeded jitter added to each retry backoff"},
      // ---- agent failover / recovery -------------------------------------
      {"suspicion_threshold", &Params::suspicion_threshold,
       "consecutive exchange failures before an agent is quarantined"},
      {"min_quorum", &Params::min_quorum,
       "live trusted-agent quorum below which a query degrades to "
       "first-hand trust (0 = degradation off)"},
      // ---- chaos engine --------------------------------------------------
      {"chaos", &Params::chaos, "deterministic fault scheduler: off|on"},
      {"chaos_seed", &Params::chaos_seed,
       "chaos RNG seed (0 = derive from the master seed)"},
      {"chaos_crash_rate", &Params::chaos_crash_rate,
       "per-node per-tick random crash probability"},
      {"chaos_mean_downtime", &Params::chaos_mean_downtime,
       "mean ticks a randomly crashed node stays down"},
      {"chaos_crash_at", &Params::chaos_crash_at,
       "scripted mass-crash tick (0 = never)"},
      {"chaos_restart_at", &Params::chaos_restart_at,
       "scripted mass-restart tick (0 = never)"},
      {"chaos_agent_crash_fraction", &Params::chaos_agent_crash_fraction,
       "fraction of agent-capable nodes crashed at chaos_crash_at"},
      {"chaos_partition_at", &Params::chaos_partition_at,
       "group-partition start tick (0 = never)"},
      {"chaos_heal_at", &Params::chaos_heal_at,
       "partition heal tick (0 = never)"},
      {"chaos_partition_fraction", &Params::chaos_partition_fraction,
       "fraction of nodes severed onto the minority side"},
      {"chaos_burst_at", &Params::chaos_burst_at,
       "burst-loss window start tick (0 = never)"},
      {"chaos_burst_until", &Params::chaos_burst_until,
       "burst-loss window end tick"},
      {"chaos_burst_drop", &Params::chaos_burst_drop,
       "per-hop drop probability inside the burst window"},
      {"chaos_slowdown_fraction", &Params::chaos_slowdown_fraction,
       "fraction of nodes given extra per-hop delay"},
      {"chaos_slowdown_ms", &Params::chaos_slowdown_ms,
       "extra per-hop delay for slowed-down nodes"},
      // ---- adversary strategy engine --------------------------------------
      {"adversary", &Params::adversary,
       "deterministic attack-campaign scheduler: off|on"},
      {"adversary_seed", &Params::adversary_seed,
       "adversary RNG seed (0 = derive from the master seed)"},
      {"adversary_ring_size", &Params::adversary_ring_size,
       "collusive bad-mouthing ring members (0 = strategy off)"},
      {"adversary_ring_at", &Params::adversary_ring_at,
       "ring formation tick (0 = at install)"},
      {"adversary_ring_targets", &Params::adversary_ring_targets,
       "good providers the ring bad-mouths"},
      {"adversary_sybil_count", &Params::adversary_sybil_count,
       "fresh sybil identities per wave (0 = strategy off)"},
      {"adversary_sybil_at", &Params::adversary_sybil_at,
       "first sybil wave tick (0 = at install)"},
      {"adversary_sybil_period", &Params::adversary_sybil_period,
       "ticks between sybil waves (0 = a single wave)"},
      {"adversary_sybil_corrupt", &Params::adversary_sybil_corrupt,
       "least-referenced good agents corrupted per sybil wave"},
      {"adversary_whitewash_count", &Params::adversary_whitewash_count,
       "malicious peers that whitewash via §3.5 key rotation (0 = off)"},
      {"adversary_whitewash_threshold", &Params::adversary_whitewash_threshold,
       "observed estimate below which a whitewasher rotates its key"},
      {"adversary_whitewash_cooldown", &Params::adversary_whitewash_cooldown,
       "minimum ticks between one peer's key rotations"},
      {"adversary_oscillator_count", &Params::adversary_oscillator_count,
       "on-off oscillator peers (0 = strategy off)"},
      {"adversary_oscillator_on", &Params::adversary_oscillator_on,
       "observed estimate at which an oscillator starts defecting"},
      {"adversary_oscillator_burst", &Params::adversary_oscillator_burst,
       "defection burst length in ticks"},
      {"adversary_front_count", &Params::adversary_front_count,
       "front peers: honest service, dishonest reports (0 = off)"},
      {"adversary_front_at", &Params::adversary_front_at,
       "front-peer recruitment tick (0 = at install)"},
  };
  return table;
}

Scenario Scenario::from_config(const util::Config& config) {
  Scenario sc;
  for (const OptionSpec& spec : option_table()) {
    apply_option(sc.params_, spec, config);
  }
  sc.validate();
  return sc;
}

std::string Scenario::help_text() {
  const Params defaults;
  std::ostringstream out;
  out << "Parameters (key=value; every key below is recognized):\n";
  for (const OptionSpec& spec : option_table()) {
    out << "  " << spec.name << "=" << type_and_default(defaults, spec) << "  "
        << spec.help << '\n';
  }
  return out.str();
}

const Scenario& Scenario::validate() const {
  const Params& p = params_;
  require(p.network_size >= 8, "network_size must be >= 8");
  require(p.crypto_mode == "fast" || p.crypto_mode == "full",
          "crypto must be fast|full");
  require(net::policy_kind_by_name(p.delivery).has_value(),
          "delivery must be instant|latency|faulty");
  require(core::execution_mode_by_name(p.execution).has_value(),
          "execution must be parallel|serial|sharded");
  // threads/shards/wave_window parse through int64, so a negative CLI
  // value would wrap to a huge uint64 — bound them above to catch that.
  require(p.threads <= 4096, "threads must be <= 4096 (negative values wrap)");
  require(p.shards <= 4096, "shards must be <= 4096 (negative values wrap)");
  require(p.wave_window <= 1000000000,
          "wave_window must be <= 1e9 (negative values wrap)");
  require(p.shards == 0 || p.execution == "sharded",
          "shards requires execution=sharded");
  require(p.drop_rate >= 0.0 && p.drop_rate <= 1.0 &&
              p.duplicate_rate >= 0.0 && p.duplicate_rate <= 1.0,
          "drop_rate/duplicate_rate must be in [0,1]");
  require(p.malicious_ratio >= 0.0 && p.malicious_ratio <= 1.0,
          "malicious_ratio must be in [0,1]");
  require(p.trustable_ratio >= 0.0 && p.trustable_ratio <= 1.0,
          "trustable_ratio must be in [0,1]");
  require(p.agent_capable_ratio >= 0.0 && p.agent_capable_ratio <= 1.0,
          "agent_capable_ratio must be in [0,1]");
  require(p.good_rating_lo <= p.good_rating_hi &&
              p.bad_rating_lo <= p.bad_rating_hi,
          "rating ranges must satisfy lo <= hi");
  require(p.expertise_alpha > 0.0 && p.expertise_alpha <= 1.0,
          "expertise_alpha must be in (0,1]");
  require(p.eviction_threshold >= 0.0 && p.eviction_threshold <= 1.0,
          "eviction_threshold must be in [0,1]");
  require(p.seeds >= 1, "seeds must be >= 1");
  require(p.trusted_agents >= 1, "trusted_agents must be >= 1");
  require(p.mse_window >= 1, "mse_window must be >= 1");
  require(p.relays_per_onion < p.network_size,
          "relays_per_onion must be < network_size");
  require(p.requestor_pool <= p.network_size,
          "requestor_pool must be <= network_size (0 = whole population)");
  require(p.provider_pool <= p.network_size,
          "provider_pool must be <= network_size (0 = whole population)");
  require(p.fault_delay_min_ms <= p.fault_delay_max_ms,
          "fault_delay_min_ms must be <= fault_delay_max_ms");
  require(p.link_min_ms <= p.link_max_ms,
          "link_min_ms must be <= link_max_ms");
  // ---- reliable request channel -----------------------------------------
  // retry_max_attempts parses through int64, so a negative CLI value would
  // wrap to a huge uint32 — bound it above to catch that mistake.
  require(p.retry_max_attempts >= 1 && p.retry_max_attempts <= 1000,
          "retry_max_attempts must be in [1,1000] (negative values wrap)");
  require(p.retry_timeout_ms >= 0.0,
          "retry_timeout_ms must be >= 0 (0 = no deadline)");
  require(p.retry_backoff_ms >= 0.0, "retry_backoff_ms must be >= 0");
  require(p.retry_jitter_ms >= 0.0, "retry_jitter_ms must be >= 0");
  require(p.suspicion_threshold >= 1 && p.suspicion_threshold <= 1000000,
          "suspicion_threshold must be in [1,1e6] (negative values wrap)");
  // ---- chaos engine -------------------------------------------------------
  require(p.chaos == "off" || p.chaos == "on", "chaos must be off|on");
  require(p.chaos_crash_rate >= 0.0 && p.chaos_crash_rate <= 1.0,
          "chaos_crash_rate must be in [0,1]");
  require(p.chaos_mean_downtime >= 0.0, "chaos_mean_downtime must be >= 0");
  require(p.chaos_agent_crash_fraction >= 0.0 &&
              p.chaos_agent_crash_fraction <= 1.0,
          "chaos_agent_crash_fraction must be in [0,1]");
  require(p.chaos_partition_fraction >= 0.0 &&
              p.chaos_partition_fraction <= 1.0,
          "chaos_partition_fraction must be in [0,1]");
  require(p.chaos_burst_drop >= 0.0 && p.chaos_burst_drop <= 1.0,
          "chaos_burst_drop must be in [0,1]");
  require(p.chaos_slowdown_fraction >= 0.0 &&
              p.chaos_slowdown_fraction <= 1.0,
          "chaos_slowdown_fraction must be in [0,1]");
  require(p.chaos_slowdown_ms >= 0.0, "chaos_slowdown_ms must be >= 0");
  require(p.chaos_restart_at == 0 || p.chaos_crash_at == 0 ||
              p.chaos_restart_at >= p.chaos_crash_at,
          "chaos_restart_at must be >= chaos_crash_at (0 = never)");
  require(p.chaos_heal_at == 0 || p.chaos_partition_at == 0 ||
              p.chaos_heal_at >= p.chaos_partition_at,
          "chaos_heal_at must be >= chaos_partition_at (0 = never)");
  require(p.chaos_burst_until == 0 || p.chaos_burst_at == 0 ||
              p.chaos_burst_until >= p.chaos_burst_at,
          "chaos_burst_until must be >= chaos_burst_at (0 = never)");
  // ---- adversary strategy engine ------------------------------------------
  require(p.adversary == "off" || p.adversary == "on",
          "adversary must be off|on");
  require(p.adversary_ring_size <= p.network_size,
          "adversary_ring_size must be <= network_size");
  require(p.adversary_ring_targets <= p.network_size,
          "adversary_ring_targets must be <= network_size");
  require(p.adversary_whitewash_count <= p.network_size,
          "adversary_whitewash_count must be <= network_size");
  require(p.adversary_oscillator_count <= p.network_size,
          "adversary_oscillator_count must be <= network_size");
  require(p.adversary_front_count <= p.network_size,
          "adversary_front_count must be <= network_size");
  require(p.adversary_whitewash_threshold >= 0.0 &&
              p.adversary_whitewash_threshold <= 1.0,
          "adversary_whitewash_threshold must be in [0,1]");
  require(p.adversary_oscillator_on >= 0.0 && p.adversary_oscillator_on <= 1.0,
          "adversary_oscillator_on must be in [0,1]");
  require(p.adversary_whitewash_cooldown >= 1,
          "adversary_whitewash_cooldown must be >= 1");
  require(p.adversary_oscillator_burst >= 1,
          "adversary_oscillator_burst must be >= 1");
  // Sybil waves join fresh identities every period; bound the per-wave
  // size like the other counts (negative CLI values wrap to huge uint64).
  require(p.adversary_sybil_count <= p.network_size,
          "adversary_sybil_count must be <= network_size");
  require(p.adversary_sybil_corrupt <= p.network_size,
          "adversary_sybil_corrupt must be <= network_size");
  return *this;
}

core::Executor Scenario::execution_policy() const {
  core::Executor exec;
  exec.mode = *core::execution_mode_by_name(params_.execution);
  exec.threads = params_.threads;
  exec.shards = params_.shards;
  exec.wave_window = params_.wave_window;
  // Environment-driven downgrades (chaos schedules faults against the
  // global transaction tick; lossy/delayed transports are order-dependent)
  // live in Executor::validate, with a logged diagnostic.
  core::Executor::Environment env;
  env.instant_delivery = params_.delivery == "instant";
  env.chaos = params_.chaos == "on";
  // The adversary engine deliberately does NOT downgrade the executor:
  // unlike chaos it never touches the wire — every campaign action is a
  // state mutation applied at a tick boundary between batches — so
  // adversarial runs stay byte-identical across serial|parallel|sharded.
  return exec.validate(env);
}

}  // namespace hirep::sim
