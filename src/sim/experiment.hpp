// Experiment runners — one per paper exhibit.  Each returns a util::Table
// whose rows/series mirror the paper's figure, plus a qualitative-claims
// check the bench binaries print as PASS/FAIL.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/params.hpp"
#include "util/table.hpp"

namespace hirep::sim {

/// A qualitative claim from the paper checked against measured data.
struct ClaimCheck {
  std::string claim;
  bool holds = false;
  std::string detail;
};

struct ExperimentResult {
  util::Table table;
  std::vector<ClaimCheck> checks;
};

/// Figure 5 — trust-query traffic (messages, cumulative) vs transactions:
/// series voting-2, voting-3, voting-4, hirep.
ExperimentResult run_fig5_traffic(const Params& params);

/// Figure 6 — windowed MSE of trust estimates vs transactions with 10%
/// malicious nodes: series voting, hirep-4, hirep-6, hirep-8 (eviction
/// thresholds 0.4/0.6/0.8).
ExperimentResult run_fig6_accuracy(const Params& params);

/// Figure 7 — MSE vs attacker ratio (0..90%): series hirep, voting.
ExperimentResult run_fig7_malicious(const Params& params);

/// §4.1 — measured trust messages per transaction vs the closed form
/// 3*c*(o+1) across sweeps of c and o (and the paper's 2c(o_i+o_j) order).
ExperimentResult run_traffic_bound(const Params& params);

/// How average_over_seeds schedules its repetitions.
enum class SeedExecution {
  kParallel,  ///< fan repetitions across util::ThreadPool (default)
  kSerial     ///< run repetitions in order on the calling thread
};

/// Runs `series(seed)` for params.seeds independent seeds and returns the
/// element-wise mean (all runs must return equal-length series).  Shared by
/// the figure runners.  Each repetition owns its whole simulated system, so
/// the parallel fan-out is race-free and byte-identical to kSerial (results
/// are combined in seed order either way).
std::vector<double> average_over_seeds(
    const Params& params,
    const std::function<std::vector<double>(std::uint64_t)>& series,
    SeedExecution execution = SeedExecution::kParallel);

/// Prints an ExperimentResult the standard way (table + checks).
void print_result(const ExperimentResult& result, const std::string& title);

/// True iff every check passed (bench exit codes).
bool all_hold(const ExperimentResult& result);

}  // namespace hirep::sim
