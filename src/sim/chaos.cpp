#include "sim/chaos.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace hirep::sim {

namespace {

/// Salt for deriving the chaos stream from the master seed (chaos_seed=0).
constexpr std::uint64_t kChaosSeedSalt = 0xc4a05eedc4a05eedULL;
/// The transport-policy seed salt HirepSystem uses; the rebuilt inner
/// policy must draw the identical fault stream the bare run would have.
constexpr std::uint64_t kTransportSeedSalt = 0xfa017ca7ULL;

struct ChaosCells {
  obs::Counter* crashes;
  obs::Counter* restarts;
  obs::Counter* partitions;
  obs::Counter* heals;
  obs::Counter* crash_drops;
  obs::Counter* partition_drops;
  obs::Counter* burst_drops;
  obs::Counter* slowdown_hops;
};

const ChaosCells& chaos_cells() {
  static const ChaosCells cells = [] {
    auto& reg = obs::Registry::global();
    return ChaosCells{&reg.counter("sim.chaos.crashes"),
                      &reg.counter("sim.chaos.restarts"),
                      &reg.counter("sim.chaos.partitions"),
                      &reg.counter("sim.chaos.heals"),
                      &reg.counter("sim.chaos.crash_drops"),
                      &reg.counter("sim.chaos.partition_drops"),
                      &reg.counter("sim.chaos.burst_drops"),
                      &reg.counter("sim.chaos.slowdown_hops")};
  }();
  return cells;
}

std::size_t fraction_of(std::size_t n, double fraction) {
  const double k = std::round(fraction * static_cast<double>(n));
  return k <= 0.0 ? 0 : static_cast<std::size_t>(k) > n
                            ? n
                            : static_cast<std::size_t>(k);
}

}  // namespace

ChaosParams chaos_params_from(const Params& p) {
  ChaosParams c;
  c.seed = p.chaos_seed;
  c.crash_rate = p.chaos_crash_rate;
  c.mean_downtime = p.chaos_mean_downtime;
  c.crash_at = p.chaos_crash_at;
  c.restart_at = p.chaos_restart_at;
  c.agent_crash_fraction = p.chaos_agent_crash_fraction;
  c.partition_at = p.chaos_partition_at;
  c.heal_at = p.chaos_heal_at;
  c.partition_fraction = p.chaos_partition_fraction;
  c.burst_at = p.chaos_burst_at;
  c.burst_until = p.chaos_burst_until;
  c.burst_drop = p.chaos_burst_drop;
  c.slowdown_fraction = p.chaos_slowdown_fraction;
  c.slowdown_ms = p.chaos_slowdown_ms;
  return c;
}

ChaosEngine::ChaosEngine(core::HirepSystem* system, ChaosParams params,
                         std::uint64_t master_seed)
    : system_(system),
      params_(params),
      rng_(params.seed != 0 ? params.seed : master_seed ^ kChaosSeedSalt),
      hop_rng_(rng_.fork()) {
  const std::size_t n = system_->node_count();
  crashed_.assign(n, 0);
  restart_tick_.assign(n, 0);
  side_.assign(n, 0);
  slow_.assign(n, 0);
  if (params_.slowdown_fraction > 0.0 && params_.slowdown_ms > 0.0) {
    for (std::size_t i :
         rng_.sample_indices(n, fraction_of(n, params_.slowdown_fraction))) {
      slow_[i] = 1;
    }
  }
}

void ChaosEngine::advance_to(std::uint64_t tick) {
  util::MutexLock lock(mu_);
  while (now_ < tick) step(++now_);
}

void ChaosEngine::step(std::uint64_t tick) {
  // 1. Pending churn restarts come first so a node's downtime is exactly
  //    the drawn span regardless of what else fires this tick.
  for (net::NodeIndex v = 0; v < restart_tick_.size(); ++v) {
    if (restart_tick_[v] != 0 && restart_tick_[v] <= tick) revive(v);
  }
  // 2. Scripted mass-crash of reputation agents.
  if (params_.crash_at != 0 && tick == params_.crash_at &&
      params_.agent_crash_fraction > 0.0) {
    std::vector<net::NodeIndex> agents;
    for (net::NodeIndex v = 0; v < crashed_.size(); ++v) {
      if (system_->agent_at(v) != nullptr && !crashed_[v]) agents.push_back(v);
    }
    const std::size_t k =
        fraction_of(agents.size(), params_.agent_crash_fraction);
    for (std::size_t i : rng_.sample_indices(agents.size(), k)) {
      crash(agents[i]);
      scripted_down_.push_back(agents[i]);
      ++counters_.scripted_crashes;
      if constexpr (obs::kEnabled) chaos_cells().crashes->add();
    }
  }
  // 3. Scripted mass-restart (exactly the set downed at crash_at).
  if (params_.restart_at != 0 && tick == params_.restart_at) {
    for (net::NodeIndex v : scripted_down_) {
      if (crashed_[v]) revive(v);
    }
    scripted_down_.clear();
  }
  // 4. Group partition: a sampled minority side is severed from the rest.
  if (params_.partition_at != 0 && tick == params_.partition_at) {
    std::fill(side_.begin(), side_.end(), 0);
    for (std::size_t i : rng_.sample_indices(
             side_.size(), fraction_of(side_.size(),
                                       params_.partition_fraction))) {
      side_[i] = 1;
    }
    partition_on_ = true;
    ++counters_.partitions;
    if constexpr (obs::kEnabled) chaos_cells().partitions->add();
  }
  if (params_.heal_at != 0 && tick == params_.heal_at && partition_on_) {
    partition_on_ = false;
    ++counters_.heals;
    if constexpr (obs::kEnabled) chaos_cells().heals->add();
  }
  // 5. Burst-loss window membership (until == 0 keeps the window open).
  burst_on_ = params_.burst_at != 0 && tick >= params_.burst_at &&
              (params_.burst_until == 0 || tick < params_.burst_until);
  // 6. Random churn: each live node crashes with crash_rate and comes back
  //    after an exponential downtime (at least one tick).
  if (params_.crash_rate > 0.0) {
    for (net::NodeIndex v = 0; v < crashed_.size(); ++v) {
      if (crashed_[v] || !rng_.chance(params_.crash_rate)) continue;
      crash(v);
      double downtime = 1.0;
      if (params_.mean_downtime > 0.0) {
        downtime += std::floor(rng_.exponential(1.0 / params_.mean_downtime));
      }
      restart_tick_[v] = tick + static_cast<std::uint64_t>(downtime);
      ++counters_.random_crashes;
      if constexpr (obs::kEnabled) chaos_cells().crashes->add();
    }
  }
}

void ChaosEngine::crash(net::NodeIndex v) {
  crashed_[v] = 1;
  if (system_->agent_at(v) != nullptr) system_->set_agent_online(v, false);
}

void ChaosEngine::revive(net::NodeIndex v) {
  crashed_[v] = 0;
  restart_tick_[v] = 0;
  // A restarted agent is live again at the transport level, but a
  // quarantine it earned while down stays until a fresh probe clears it —
  // that is the recovery path under test.
  if (system_->agent_at(v) != nullptr) system_->set_agent_online(v, true);
  ++counters_.restarts;
  if constexpr (obs::kEnabled) chaos_cells().restarts->add();
}

bool ChaosEngine::crashed(net::NodeIndex v) const {
  util::MutexLock lock(mu_);
  return v < crashed_.size() && crashed_[v] != 0;
}

bool ChaosEngine::severed(net::NodeIndex a, net::NodeIndex b) const {
  util::MutexLock lock(mu_);
  if (!partition_on_) return false;
  const std::uint8_t sa = a < side_.size() ? side_[a] : 0;
  const std::uint8_t sb = b < side_.size() ? side_[b] : 0;
  return sa != sb;
}

bool ChaosEngine::draw_burst_drop() {
  util::MutexLock lock(mu_);
  return hop_rng_.chance(params_.burst_drop);
}

double ChaosEngine::slowdown_of(net::NodeIndex v) const {
  util::MutexLock lock(mu_);
  return v < slow_.size() && slow_[v] != 0 ? params_.slowdown_ms : 0.0;
}

void ChaosEngine::note_crash_drop() {
  util::MutexLock lock(mu_);
  ++counters_.crash_drops;
  if constexpr (obs::kEnabled) chaos_cells().crash_drops->add();
}

void ChaosEngine::note_partition_drop() {
  util::MutexLock lock(mu_);
  ++counters_.partition_drops;
  if constexpr (obs::kEnabled) chaos_cells().partition_drops->add();
}

void ChaosEngine::note_burst_drop() {
  util::MutexLock lock(mu_);
  ++counters_.burst_drops;
  if constexpr (obs::kEnabled) chaos_cells().burst_drops->add();
}

void ChaosEngine::note_slowdown_hop() {
  util::MutexLock lock(mu_);
  ++counters_.slowdown_hops;
  if constexpr (obs::kEnabled) chaos_cells().slowdown_hops->add();
}

net::HopDecision ChaosDelivery::on_hop(const net::Envelope& envelope,
                                       net::NodeIndex from, net::NodeIndex to) {
  // Draw the inner verdict unconditionally so the wrapped policy's private
  // fault stream stays aligned with the equivalent chaos-free run.
  net::HopDecision d = inner_->on_hop(envelope, from, to);
  if (d.drop) return d;
  if (engine_->crashed(from) || engine_->crashed(to)) {
    d.drop = true;
    engine_->note_crash_drop();
  } else if (engine_->severed(from, to)) {
    d.drop = true;
    engine_->note_partition_drop();
  } else if (engine_->burst_active() && engine_->draw_burst_drop()) {
    d.drop = true;
    engine_->note_burst_drop();
  }
  if (!d.drop) {
    const double slow =
        engine_->slowdown_of(from) + engine_->slowdown_of(to);
    if (slow > 0.0) {
      d.delay_ms += slow;
      engine_->note_slowdown_hop();
    }
  }
  return d;
}

std::shared_ptr<ChaosEngine> install_chaos(core::HirepSystem& system,
                                           const Params& params) {
  if (params.chaos != "on") return nullptr;
  auto engine = std::make_shared<ChaosEngine>(
      &system, chaos_params_from(params), params.seed);
  auto inner =
      net::make_policy(params.delivery_config(), &system.overlay().latency(),
                       params.seed ^ kTransportSeedSalt);
  system.transport().set_policy(
      std::make_unique<ChaosDelivery>(std::move(inner), engine));
  return engine;
}

}  // namespace hirep::sim
