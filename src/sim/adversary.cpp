#include "sim/adversary.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/attacks.hpp"

namespace hirep::sim {

namespace {

/// Salt for deriving the adversary stream from the master seed
/// (adversary_seed=0).  Distinct from every other derived-stream salt, so
/// installing the engine never perturbs the world, workload, chaos, or
/// transport streams.
constexpr std::uint64_t kAdversarySeedSalt = 0xbadf00d5badf00d5ULL;

/// Disarmed schedule slot.
constexpr std::uint64_t kNever = ~0ULL;

struct AdversaryCells {
  obs::Counter* ring_recruits;
  obs::Counter* ring_targets;
  obs::Counter* sybil_joins;
  obs::Counter* sybil_evaluator_corruptions;
  obs::Counter* sybil_agent_corruptions;
  obs::Counter* whitewash_rotations;
  obs::Counter* whitewash_resets;
  obs::Counter* oscillator_defections;
  obs::Counter* oscillator_recoveries;
  obs::Counter* front_recruits;
};

const AdversaryCells& adversary_cells() {
  static const AdversaryCells cells = [] {
    auto& reg = obs::Registry::global();
    return AdversaryCells{
        &reg.counter("sim.adversary.ring_recruits"),
        &reg.counter("sim.adversary.ring_targets"),
        &reg.counter("sim.adversary.sybil_joins"),
        &reg.counter("sim.adversary.sybil_evaluator_corruptions"),
        &reg.counter("sim.adversary.sybil_agent_corruptions"),
        &reg.counter("sim.adversary.whitewash_rotations"),
        &reg.counter("sim.adversary.whitewash_resets"),
        &reg.counter("sim.adversary.oscillator_defections"),
        &reg.counter("sim.adversary.oscillator_recoveries"),
        &reg.counter("sim.adversary.front_recruits")};
  }();
  return cells;
}

}  // namespace

AdversaryParams adversary_params_from(const Params& p) {
  AdversaryParams a;
  a.seed = p.adversary_seed;
  a.requestor_pool = p.requestor_pool;
  a.provider_pool = p.provider_pool;
  a.ring_size = p.adversary_ring_size;
  a.ring_at = p.adversary_ring_at;
  a.ring_targets = p.adversary_ring_targets;
  a.sybil_count = p.adversary_sybil_count;
  a.sybil_at = p.adversary_sybil_at;
  a.sybil_period = p.adversary_sybil_period;
  a.sybil_corrupt = p.adversary_sybil_corrupt;
  a.whitewash_count = p.adversary_whitewash_count;
  a.whitewash_threshold = p.adversary_whitewash_threshold;
  a.whitewash_cooldown = p.adversary_whitewash_cooldown;
  a.oscillator_count = p.adversary_oscillator_count;
  a.oscillator_on = p.adversary_oscillator_on;
  a.oscillator_burst = p.adversary_oscillator_burst;
  a.front_count = p.adversary_front_count;
  a.front_at = p.adversary_front_at;
  a.static_ratio = p.malicious_ratio;
  return a;
}

// ---- HirepAdversaryHost ----------------------------------------------------

std::optional<net::NodeIndex> HirepAdversaryHost::spawn_identity() {
  return system_->join_peer();
}

bool HirepAdversaryHost::rotate_identity(net::NodeIndex v) {
  // §3.5: the rotation protocol migrates the peer's reputation standing to
  // the fresh key, which is exactly why whitewashing fails against hiREP.
  (void)system_->rotate_peer_key(v);
  return true;
}

std::vector<net::NodeIndex> HirepAdversaryHost::corrupt_fringe_agents(
    std::size_t count) {
  return sybil_corrupt_agents(*system_, count);
}

std::vector<std::vector<core::AgentEntry>> HirepAdversaryHost::hostile_lists(
    const std::vector<net::NodeIndex>& targets,
    const std::vector<net::NodeIndex>& members, std::size_t list_count) {
  return hostile_recommendations(*system_, targets, members, list_count);
}

// ---- Adversary -------------------------------------------------------------

Adversary::Adversary(std::unique_ptr<AdversaryHost> host,
                     AdversaryParams params, std::uint64_t master_seed)
    : host_(std::move(host)),
      params_(params),
      rng_(params.seed != 0 ? params.seed : master_seed ^ kAdversarySeedSalt),
      next_sybil_(kNever) {
  util::MutexLock lock(mu_);
  claimed_.assign(host_->node_count(), 0);
  // Fixed activation/recruitment order so a schedule replays identically:
  // ring, fronts, whitewashers, oscillators, sybil.
  if (params_.ring_size > 0 && params_.ring_at == 0) form_ring();
  if (params_.front_count > 0 && params_.front_at == 0) recruit_fronts();
  recruit_whitewashers();
  recruit_oscillators();
  if (params_.sybil_count > 0) {
    if (params_.sybil_at == 0) {
      sybil_wave();
      next_sybil_ = params_.sybil_period != 0 ? params_.sybil_period : kNever;
    } else {
      next_sybil_ = params_.sybil_at;
    }
  }
}

void Adversary::advance_to(std::uint64_t tick) {
  util::MutexLock lock(mu_);
  while (now_ < tick) step(++now_);
}

void Adversary::observe(net::NodeIndex provider, double estimate) {
  util::MutexLock lock(mu_);
  for (auto& t : whitewash_) {
    if (t.peer == provider) t.estimate = estimate;
  }
  for (auto& t : oscillators_) {
    if (t.peer == provider) t.estimate = estimate;
  }
}

void Adversary::step(std::uint64_t tick) {
  // 1. Delayed ring formation / front recruitment.
  if (!ring_formed_ && params_.ring_size > 0 && tick == params_.ring_at) {
    form_ring();
  }
  if (!fronts_recruited_ && params_.front_count > 0 &&
      tick == params_.front_at) {
    recruit_fronts();
  }
  // 2. Sybil waves on their schedule.
  if (tick == next_sybil_) {
    sybil_wave();
    next_sybil_ = params_.sybil_period != 0 ? tick + params_.sybil_period
                                            : kNever;
  }
  // 3. Whitewash trigger: once the community's estimate of a tracked peer
  //    collapses below the threshold (and the cooldown has elapsed), shed
  //    the identity.  Against hiREP the §3.5 rotation migrates standing
  //    (the defense holds); against identity-keyed stores the reputation
  //    is wiped (the attack works).
  for (auto& t : whitewash_) {
    if (t.estimate < 0.0 || t.estimate >= params_.whitewash_threshold ||
        tick < t.last_action + params_.whitewash_cooldown) {
      continue;
    }
    if (host_->rotate_identity(t.peer)) {
      ++counters_.whitewash_rotations;
      if constexpr (obs::kEnabled) adversary_cells().whitewash_rotations->add();
    } else {
      host_->reset_reputation(t.peer);
      ++counters_.whitewash_resets;
      if constexpr (obs::kEnabled) adversary_cells().whitewash_resets->add();
    }
    t.estimate = -1.0;
    t.last_action = tick;
  }
  // 4. On-off oscillators: play nice until trusted, then defect in bursts.
  for (auto& t : oscillators_) {
    if (!t.defecting) {
      if (t.estimate >= params_.oscillator_on) {
        host_->truth().force_service(t.peer, false);
        t.defecting = true;
        t.defect_until = tick + params_.oscillator_burst;
        t.estimate = -1.0;
        ++counters_.oscillator_defections;
        if constexpr (obs::kEnabled) {
          adversary_cells().oscillator_defections->add();
        }
      }
    } else if (tick >= t.defect_until) {
      host_->truth().force_service(t.peer, true);
      t.defecting = false;
      t.estimate = -1.0;
      ++counters_.oscillator_recoveries;
      if constexpr (obs::kEnabled) {
        adversary_cells().oscillator_recoveries->add();
      }
    }
  }
}

template <typename Pred>
std::vector<net::NodeIndex> Adversary::recruit(std::size_t pool,
                                               std::size_t count, Pred pred) {
  const std::size_t n = claimed_.size();
  const std::size_t limit = pool == 0 ? n : std::min(pool, n);
  std::vector<net::NodeIndex> candidates;
  for (std::size_t v = 0; v < limit; ++v) {
    const auto node = static_cast<net::NodeIndex>(v);
    if (claimed_[v] == 0 && pred(node)) candidates.push_back(node);
  }
  count = std::min(count, candidates.size());
  std::vector<net::NodeIndex> picked;
  picked.reserve(count);
  for (std::size_t idx : rng_.sample_indices(candidates.size(), count)) {
    picked.push_back(candidates[idx]);
    claimed_[candidates[idx]] = 1;
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

void Adversary::form_ring() {
  ring_formed_ = true;
  auto& truth = host_->truth();
  // The clique is drawn from the whole population (members coordinate in
  // whatever role — evaluator, voter, agent — they happen to hold).
  ring_members_ = recruit(0, params_.ring_size,
                          [](net::NodeIndex) { return true; });
  for (net::NodeIndex m : ring_members_) {
    truth.set_behavior(m, trust::Behavior::kBadmouth);
    truth.set_ring_member(m, true);
    ++counters_.ring_recruits;
    if constexpr (obs::kEnabled) adversary_cells().ring_recruits->add();
  }
  // Targets are good providers from the active provider pool — the peers
  // whose standing a bad-mouthing campaign actually damages.
  ring_targets_ =
      recruit(params_.provider_pool, params_.ring_targets,
              [&truth](net::NodeIndex v) { return truth.trustable(v); });
  for (net::NodeIndex t : ring_targets_) {
    truth.set_ring_target(t, true);
    ++counters_.ring_targets_marked;
    if constexpr (obs::kEnabled) adversary_cells().ring_targets->add();
  }
}

void Adversary::recruit_fronts() {
  fronts_recruited_ = true;
  auto& truth = host_->truth();
  // Fronts sit in the requestor pool: they transact constantly, deliver
  // honest service, and poison every evaluation and report they file.
  fronts_ = recruit(params_.requestor_pool, params_.front_count,
                    [](net::NodeIndex) { return true; });
  for (net::NodeIndex v : fronts_) {
    truth.set_behavior(v, trust::Behavior::kFront);
    truth.force_service(v, true);
    ++counters_.front_recruits;
    if constexpr (obs::kEnabled) adversary_cells().front_recruits->add();
  }
}

void Adversary::recruit_whitewashers() {
  auto& truth = host_->truth();
  // Whitewashers are untrustable providers: they earn the bad reputation
  // they will try to shed.
  for (net::NodeIndex v :
       recruit(params_.provider_pool, params_.whitewash_count,
               [&truth](net::NodeIndex v) { return !truth.trustable(v); })) {
    Tracked t;
    t.peer = v;
    whitewash_.push_back(t);
  }
}

void Adversary::recruit_oscillators() {
  auto& truth = host_->truth();
  for (net::NodeIndex v :
       recruit(params_.provider_pool, params_.oscillator_count,
               [&truth](net::NodeIndex v) { return !truth.trustable(v); })) {
    Tracked t;
    t.peer = v;
    truth.force_service(v, true);  // open in the play-nice phase
    oscillators_.push_back(t);
  }
}

void Adversary::sybil_wave() {
  auto& truth = host_->truth();
  for (std::size_t i = 0; i < params_.sybil_count; ++i) {
    if (auto v = host_->spawn_identity()) {
      truth.set_malicious(*v, true);
      sybil_converts_.push_back(*v);
      ++counters_.sybil_joins;
      if constexpr (obs::kEnabled) adversary_cells().sybil_joins->add();
    } else {
      // No open membership on this host: each sybil identity degrades to
      // one more corrupted evaluator.
      truth.corrupt_evaluators(rng_, 1);
      ++counters_.sybil_evaluator_corruptions;
      if constexpr (obs::kEnabled) {
        adversary_cells().sybil_evaluator_corruptions->add();
      }
    }
  }
  if (params_.sybil_corrupt > 0) {
    const auto converts = host_->corrupt_fringe_agents(params_.sybil_corrupt);
    sybil_converts_.insert(sybil_converts_.end(), converts.begin(),
                           converts.end());
    counters_.sybil_agent_corruptions += converts.size();
    if constexpr (obs::kEnabled) {
      adversary_cells().sybil_agent_corruptions->add(converts.size());
    }
  }
}

std::vector<net::NodeIndex> Adversary::ring_members() const {
  util::MutexLock lock(mu_);
  return ring_members_;
}

std::vector<net::NodeIndex> Adversary::ring_targets() const {
  util::MutexLock lock(mu_);
  return ring_targets_;
}

std::vector<net::NodeIndex> Adversary::whitewashers() const {
  util::MutexLock lock(mu_);
  std::vector<net::NodeIndex> out;
  out.reserve(whitewash_.size());
  for (const auto& t : whitewash_) out.push_back(t.peer);
  return out;
}

std::vector<net::NodeIndex> Adversary::oscillators() const {
  util::MutexLock lock(mu_);
  std::vector<net::NodeIndex> out;
  out.reserve(oscillators_.size());
  for (const auto& t : oscillators_) out.push_back(t.peer);
  return out;
}

std::vector<net::NodeIndex> Adversary::front_peers() const {
  util::MutexLock lock(mu_);
  return fronts_;
}

std::vector<net::NodeIndex> Adversary::sybil_converts() const {
  util::MutexLock lock(mu_);
  return sybil_converts_;
}

std::vector<std::vector<core::AgentEntry>> Adversary::ring_recommendations(
    std::size_t list_count) const {
  util::MutexLock lock(mu_);
  if (ring_members_.empty()) return {};
  return host_->hostile_lists(ring_targets_, ring_members_, list_count);
}

std::shared_ptr<Adversary> install_adversary(core::HirepSystem& system,
                                             const Params& params) {
  if (params.adversary != "on") return nullptr;
  return std::make_shared<Adversary>(
      std::make_unique<HirepAdversaryHost>(&system),
      adversary_params_from(params), params.seed);
}

}  // namespace hirep::sim
