#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <span>
#include <utility>

#include "sim/adversary.hpp"
#include "sim/chaos.hpp"
#include "sim/scenario.hpp"
#include "sim/windowed_mse.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace hirep::sim {

namespace {

Params with_seed(Params p, std::uint64_t seed) {
  p.seed = seed;
  return p;
}

/// Active-community workload (see Params::requestor_pool): requestors and
/// providers drawn from pool-prefixes of the node space.
std::pair<net::NodeIndex, net::NodeIndex> pick_pair(util::Rng& rng,
                                                    const Params& p) {
  const std::size_t rn =
      p.requestor_pool ? std::min(p.requestor_pool, p.network_size)
                       : p.network_size;
  const std::size_t pn =
      p.provider_pool ? std::min(p.provider_pool, p.network_size)
                      : p.network_size;
  const auto requestor = static_cast<net::NodeIndex>(rng.below(rn));
  net::NodeIndex provider;
  do {
    provider = static_cast<net::NodeIndex>(rng.below(pn));
  } while (provider == requestor);
  return {requestor, provider};
}

/// The figure runners pre-draw their whole transaction workload from a
/// dedicated stream (decoupled from the engine's per-transaction streams),
/// then feed it to run_transactions() in checkpoint-sized chunks.
constexpr std::uint64_t kWorkloadSalt = 0x5eedba5eca11f00dULL;

std::vector<std::pair<net::NodeIndex, net::NodeIndex>> draw_pairs(
    const Params& p, std::size_t count) {
  util::Rng rng(p.seed ^ kWorkloadSalt);
  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) pairs.push_back(pick_pair(rng, p));
  return pairs;
}

}  // namespace

std::vector<double> average_over_seeds(
    const Params& params,
    const std::function<std::vector<double>(std::uint64_t)>& series,
    SeedExecution execution) {
  const std::size_t reps = std::max<std::size_t>(1, params.seeds);
  std::vector<std::vector<double>> results(reps);
  if (reps == 1 || execution == SeedExecution::kSerial) {
    for (std::size_t s = 0; s < reps; ++s) {
      results[s] = series(params.seed + s * 7919);
    }
  } else {
    // Seeds are embarrassingly parallel: each repetition owns its whole
    // simulated system, so the fan-out is race-free by construction and
    // the result is identical to the sequential order (combined by index).
    util::ThreadPool pool;
    pool.parallel_for(reps, [&](std::size_t s) {
      results[s] = series(params.seed + s * 7919);
    });
  }
  std::vector<double> acc;
  for (const auto& ys : results) {
    if (acc.empty()) acc.assign(ys.size(), 0.0);
    for (std::size_t i = 0; i < ys.size(); ++i) acc[i] += ys[i];
  }
  for (double& v : acc) v /= static_cast<double>(reps);
  return acc;
}

// ---------------------------------------------------------------------------
// Figure 5 — traffic
// ---------------------------------------------------------------------------

ExperimentResult run_fig5_traffic(const Params& params) {
  const std::size_t total = params.transactions;
  const std::size_t step = std::max<std::size_t>(1, total / 10);
  std::vector<std::size_t> checkpoints;
  for (std::size_t t = step; t <= total; t += step) checkpoints.push_back(t);

  // Cumulative trust-traffic series for one voting system of degree d.
  // Traffic is read off the overlay's TrafficMetrics counters (relative to
  // the post-construction baseline) rather than summed per transaction, so
  // the figure measures exactly what the transport counted.
  auto voting_series = [&](double degree) {
    return average_over_seeds(params, [&](std::uint64_t seed) {
      Params p = with_seed(params, seed);
      p.neighbors_per_node = degree;
      baselines::PureVotingSystem system(p.voting_options());
      const std::uint64_t baseline = system.overlay().metrics().trust_traffic();
      std::vector<double> ys;
      std::size_t next = 0;
      for (std::size_t t = 1; t <= total; ++t) {
        system.run_transaction();
        if (next < checkpoints.size() && t == checkpoints[next]) {
          ys.push_back(static_cast<double>(
              system.overlay().metrics().trust_traffic() - baseline));
          ++next;
        }
      }
      return ys;
    });
  };

  auto hirep_series = average_over_seeds(params, [&](std::uint64_t seed) {
    const Params p = with_seed(params, seed);
    core::HirepSystem system(p.hirep_options());
    // Opt-in fault schedule (nullptr — and zero side effects — when
    // chaos=off); the tick clock advances at checkpoint boundaries.
    const auto chaos = install_chaos(system, p);
    const auto exec = Scenario(p).execution_policy();
    // Figure 5 measures traffic over the whole population (no
    // active-community pools), like the no-argument run_transaction() the
    // serial pipeline used.
    Params workload = p;
    workload.requestor_pool = 0;
    workload.provider_pool = 0;
    const auto pairs = draw_pairs(workload, total);
    const std::uint64_t baseline = system.trust_message_total();
    std::vector<double> ys;
    std::size_t done = 0;
    for (const std::size_t t : checkpoints) {
      system.run_transactions(std::span(pairs).subspan(done, t - done), exec);
      done = t;
      if (chaos) chaos->advance_to(done);
      ys.push_back(
          static_cast<double>(system.trust_message_total() - baseline));
    }
    return ys;
  });

  const auto v2 = voting_series(2.0);
  const auto v3 = voting_series(3.0);
  const auto v4 = voting_series(4.0);

  util::Table table(
      {"transactions", "voting-2", "voting-3", "voting-4", "hirep"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.add_row({static_cast<std::int64_t>(checkpoints[i]), v2[i], v3[i],
                   v4[i], hirep_series[i]});
  }

  ExperimentResult result{std::move(table), {}};
  const double h_final = hirep_series.back();
  result.checks.push_back(
      {"hirep traffic < 1/2 of pure voting even at degree 2 (Fig 5)",
       h_final < 0.5 * v2.back(),
       "hirep=" + std::to_string(h_final) + " voting-2=" +
           std::to_string(v2.back())});
  result.checks.push_back(
      {"denser networks flood more (voting-4 > voting-3 > voting-2)",
       v4.back() > v3.back() && v3.back() > v2.back(),
       "v4=" + std::to_string(v4.back()) + " v3=" + std::to_string(v3.back()) +
           " v2=" + std::to_string(v2.back())});
  // Per-transaction hirep traffic is (near) constant: compare first and
  // last checkpoint increments.
  const double first_rate = hirep_series.front() / static_cast<double>(step);
  const double last_rate = (hirep_series.back() - hirep_series[hirep_series.size() - 2]) /
                           static_cast<double>(checkpoints.back() -
                                               checkpoints[checkpoints.size() - 2]);
  result.checks.push_back(
      {"hirep per-transaction traffic is degree-independent and ~constant",
       std::abs(first_rate - last_rate) < 0.5 * first_rate,
       "first=" + std::to_string(first_rate) + "/txn last=" +
           std::to_string(last_rate) + "/txn"});
  return result;
}

// ---------------------------------------------------------------------------
// Figure 6 — accuracy vs transactions
// ---------------------------------------------------------------------------

ExperimentResult run_fig6_accuracy(const Params& params) {
  const std::size_t total = std::max<std::size_t>(params.transactions, 100);
  const std::size_t step = std::max<std::size_t>(1, params.mse_window / 2);
  std::vector<std::size_t> checkpoints;
  for (std::size_t t = step; t <= total; t += step) checkpoints.push_back(t);

  auto hirep_series = [&](double threshold) {
    return average_over_seeds(params, [&](std::uint64_t seed) {
      Params p = with_seed(params, seed);
      p.eviction_threshold = threshold;
      core::HirepSystem system(p.hirep_options());
      // Opt-in fault schedule (nullptr when chaos=off), advanced at
      // checkpoint boundaries like Figure 5.
      const auto chaos = install_chaos(system, p);
      const auto exec = Scenario(p).execution_policy();
      const auto pairs = draw_pairs(p, total);
      WindowedMse window(params.mse_window);
      std::vector<double> ys;
      std::size_t done = 0;
      for (const std::size_t t : checkpoints) {
        const auto records = system.run_transactions(
            std::span(pairs).subspan(done, t - done), exec);
        done = t;
        if (chaos) chaos->advance_to(done);
        for (const auto& rec : records) {
          window.add(rec.estimate, rec.truth_value);
        }
        ys.push_back(window.mse());
      }
      return ys;
    });
  };

  auto voting = average_over_seeds(params, [&](std::uint64_t seed) {
    const Params p = with_seed(params, seed);
    baselines::PureVotingSystem system(p.voting_options());
    WindowedMse window(params.mse_window);
    std::vector<double> ys;
    std::size_t next = 0;
    for (std::size_t t = 1; t <= total; ++t) {
      const auto [requestor, provider] = pick_pair(system.rng(), p);
      const auto rec = system.run_transaction(requestor, provider);
      window.add(rec.estimate, rec.truth_value);
      if (next < checkpoints.size() && t == checkpoints[next]) {
        ys.push_back(window.mse());
        ++next;
      }
    }
    return ys;
  });

  const auto h4 = hirep_series(0.4);
  const auto h6 = hirep_series(0.6);
  const auto h8 = hirep_series(0.8);

  util::Table table({"transactions", "voting", "hirep-4", "hirep-6", "hirep-8"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.add_row({static_cast<std::int64_t>(checkpoints[i]), voting[i], h4[i],
                   h6[i], h8[i]});
  }

  ExperimentResult result{std::move(table), {}};
  const double v_final = voting.back();
  for (const auto& [name, series] :
       std::vector<std::pair<std::string, const std::vector<double>*>>{
           {"hirep-4", &h4}, {"hirep-6", &h6}, {"hirep-8", &h8}}) {
    result.checks.push_back(
        {name + " ends with lower MSE than pure voting (Fig 6)",
         series->back() < v_final,
         name + "=" + std::to_string(series->back()) + " voting=" +
             std::to_string(v_final)});
  }
  result.checks.push_back(
      {"hirep trains: MSE drops by >= 25% from start to end",
       h4.back() < 0.75 * h4.front(),
       "start=" + std::to_string(h4.front()) + " end=" +
           std::to_string(h4.back())});
  // Convergence speed: transactions until the series first dips below the
  // voting level; higher threshold should not be slower.
  auto converge_at = [&](const std::vector<double>& series) {
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series[i] < v_final) return checkpoints[i];
    }
    return total + 1;
  };
  result.checks.push_back(
      {"higher eviction threshold converges no slower (hirep-8 vs hirep-4)",
       converge_at(h8) <= converge_at(h4),
       "hirep-8@" + std::to_string(converge_at(h8)) + " hirep-4@" +
           std::to_string(converge_at(h4))});
  return result;
}

// ---------------------------------------------------------------------------
// Figure 7 — accuracy vs attacker ratio
// ---------------------------------------------------------------------------

ExperimentResult run_fig7_malicious(const Params& params) {
  const std::vector<double> ratios{0.0, 0.1, 0.2, 0.3, 0.4,
                                   0.5, 0.6, 0.7, 0.8, 0.9};
  // High attacker ratios need several evict/refill cycles per active peer
  // before the good-agent survivors dominate, hence the longer training run.
  const std::size_t train = std::max<std::size_t>(params.transactions, 600);
  const std::size_t measure = 100;

  // The hiREP arm runs through the adversary-engine pipeline: the attacker
  // ratio is the engine's degenerate *static* strategy (malicious_ratio
  // applied at world bootstrap — zero runtime engine action), the workload
  // is pre-drawn from the dedicated stream, and the engine's tick clock
  // advances at chunk boundaries so tick-scheduled strategies compose with
  // this figure when armed via the adversary_* knobs.
  const auto hirep_records = [&](const Params& p, std::size_t total) {
    core::HirepSystem system(p.hirep_options());
    const auto adversary = install_adversary(system, p);
    const auto exec = Scenario(p).execution_policy();
    const auto pairs = draw_pairs(p, total);
    constexpr std::size_t kChunk = 50;
    std::vector<core::HirepSystem::TransactionRecord> all;
    all.reserve(total);
    std::size_t done = 0;
    while (done < total) {
      const std::size_t next = std::min(done + kChunk, total);
      const auto records = system.run_transactions(
          std::span(pairs).subspan(done, next - done), exec);
      done = next;
      if (adversary) {
        adversary->observe_records(records);
        adversary->advance_to(done);
      }
      all.insert(all.end(), records.begin(), records.end());
    }
    return all;
  };

  std::vector<double> hirep_mse, voting_mse;
  for (double ratio : ratios) {
    const auto h = average_over_seeds(params, [&](std::uint64_t seed) {
      Params p = with_seed(params, seed);
      p.malicious_ratio = ratio;
      const auto records = hirep_records(p, train + measure);
      util::MseAccumulator acc;
      for (std::size_t t = train; t < records.size(); ++t) {
        acc.add(records[t].estimate, records[t].truth_value);
      }
      return std::vector<double>{acc.mse()};
    });
    hirep_mse.push_back(h[0]);

    const auto v = average_over_seeds(params, [&](std::uint64_t seed) {
      Params p = with_seed(params, seed);
      p.malicious_ratio = ratio;
      baselines::PureVotingSystem system(p.voting_options());
      util::MseAccumulator acc;
      for (std::size_t t = 0; t < measure; ++t) {
        const auto [requestor, provider] = pick_pair(system.rng(), p);
        const auto rec = system.run_transaction(requestor, provider);
        acc.add(rec.estimate, rec.truth_value);
      }
      return std::vector<double>{acc.mse()};
    });
    voting_mse.push_back(v[0]);
  }

  util::Table table({"attacker_ratio_pct", "hirep", "voting"});
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    table.add_row({static_cast<std::int64_t>(ratios[i] * 100 + 0.5),
                   hirep_mse[i], voting_mse[i]});
  }

  ExperimentResult result{std::move(table), {}};
  result.checks.push_back(
      {"voting degrades much faster with attackers than hirep (Fig 7)",
       (voting_mse.back() - voting_mse.front()) >
           2.0 * (hirep_mse.back() - hirep_mse.front()),
       "voting rise=" + std::to_string(voting_mse.back() - voting_mse.front()) +
           " hirep rise=" + std::to_string(hirep_mse.back() - hirep_mse.front())});
  // Paper: "pure voting may be more accurate when there are very few
  // malicious nodes".  Our agents additionally learn exact trust values
  // from authentic reports, so hiREP can already edge ahead at 0%; the
  // reproducible part of the claim is that both are accurate there.
  result.checks.push_back(
      {"with ~no attackers both systems are accurate (MSE < 0.08)",
       voting_mse.front() < 0.08 && hirep_mse.front() < 0.08,
       "voting@0=" + std::to_string(voting_mse.front()) + " hirep@0=" +
           std::to_string(hirep_mse.front())});
  bool overwhelm = true;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    if (ratios[i] >= 0.3 && hirep_mse[i] >= voting_mse[i]) overwhelm = false;
  }
  result.checks.push_back(
      {"hirep overwhelms voting as attackers increase (ratio >= 30%)",
       overwhelm, ""});
  result.checks.push_back(
      {"even at 90% attackers hirep MSE stays under 25%",
       hirep_mse.back() < 0.25, "hirep@90=" + std::to_string(hirep_mse.back())});
  // Engine-off equivalence: installing the adversary engine with no
  // strategy armed must leave the run bit-identical to adversary=off (the
  // static ratio lives in world bootstrap, not in the engine).
  {
    const auto sample = [&](const char* mode) {
      Params p = with_seed(params, params.seed);
      p.malicious_ratio = 0.1;
      p.adversary = mode;
      std::vector<double> xs;
      for (const auto& rec : hirep_records(p, 120)) {
        xs.push_back(rec.estimate);
        xs.push_back(rec.truth_value);
        xs.push_back(static_cast<double>(rec.trust_messages));
      }
      return xs;
    };
    result.checks.push_back(
        {"idle adversary engine (adversary=on, no strategies) is"
         " bit-identical to adversary=off",
         sample("on") == sample("off"), ""});
  }
  return result;
}

// ---------------------------------------------------------------------------
// §4.1 — traffic bound
// ---------------------------------------------------------------------------

ExperimentResult run_traffic_bound(const Params& params) {
  util::Table table({"c_agents", "o_relays", "measured_per_txn",
                     "closed_form_3c(o+1)", "paper_order_2c*2o"});
  bool exact = true;
  for (std::size_t c : {2, 5, 10}) {
    for (std::size_t o : {2, 5, 10}) {
      Params p = params;
      p.network_size = std::max<std::size_t>(params.network_size / 4, 200);
      p.trusted_agents = c;
      p.relays_per_onion = o;
      p.malicious_ratio = 0.0;  // no evictions: responding set is stable
      core::HirepSystem system(p.hirep_options());
      const std::size_t txns = 10;
      std::uint64_t messages = 0;
      std::uint64_t responses = 0;
      for (std::size_t t = 0; t < txns; ++t) {
        const auto rec = system.run_transaction();
        messages += rec.trust_messages;
        responses += rec.responses;
      }
      const double measured =
          static_cast<double>(messages) / static_cast<double>(txns);
      // Per responding agent, a transaction spends exactly 3(o+1) messages
      // (request, response, report — each o relay hops + the final hop).
      // Discovery may leave a list below capacity c, so the closed form is
      // evaluated against the realized responder count.
      const double closed = 3.0 * static_cast<double>(o + 1) *
                            static_cast<double>(responses) /
                            static_cast<double>(txns);
      const double paper = 2.0 * static_cast<double>(c) *
                           static_cast<double>(2 * o);
      if (measured != closed) exact = false;
      table.add_row({static_cast<std::int64_t>(c), static_cast<std::int64_t>(o),
                     measured, closed, paper});
    }
  }
  ExperimentResult result{std::move(table), {}};
  result.checks.push_back(
      {"measured per-transaction traffic == 3(o+1) per responder, O(c) (§4.1)",
       exact, ""});
  return result;
}

// ---------------------------------------------------------------------------

void print_result(const ExperimentResult& result, const std::string& title) {
  std::cout << "== " << title << " ==\n\n";
  result.table.print(std::cout);
  std::cout << '\n';
  for (const auto& check : result.checks) {
    std::cout << (check.holds ? "[PASS] " : "[FAIL] ") << check.claim;
    if (!check.detail.empty()) std::cout << "  (" << check.detail << ')';
    std::cout << '\n';
  }
  std::cout << std::endl;
}

bool all_hold(const ExperimentResult& result) {
  return std::all_of(result.checks.begin(), result.checks.end(),
                     [](const ClaimCheck& c) { return c.holds; });
}

}  // namespace hirep::sim
