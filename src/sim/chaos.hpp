// sim::ChaosEngine — deterministic fault schedules for robustness runs.
//
// The engine advances on the *transaction tick* (one tick per completed
// transaction), not the transport's millisecond clock, so a schedule like
// "crash 30% of the agents at tick 40, heal the partition at tick 80"
// replays bit-for-bit across runs: the tick sequence is a pure function of
// the workload, and every stochastic choice the engine makes draws from
// its own seeded Rng, never from the simulation's main stream.
//
// Faults are injected at two seams:
//   * node state — crashing a node takes its reputation agent offline
//     (core::HirepSystem::set_agent_online), which is what drives the
//     community's suspicion/quarantine failover;
//   * the wire — ChaosDelivery wraps the configured DeliveryPolicy and
//     overlays drops for hops touching crashed nodes or crossing an active
//     partition cut, burst-loss windows, and per-node slowdown delay.
//     The inner policy's decision is always drawn FIRST, so its private
//     fault stream stays aligned with the equivalent chaos-free run.
//
// Everything is opt-in through sim::Scenario (`chaos=on` plus the
// chaos_* knobs); with chaos=off install_chaos() returns nullptr and the
// run is untouched — that is the golden-safety guarantee.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hirep/system.hpp"
#include "net/transport.hpp"
#include "sim/params.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace hirep::sim {

/// The chaos schedule, decoupled from the full Params bag.  Tick fields
/// use 0 as "never"; see Params for per-field documentation.
struct ChaosParams {
  std::uint64_t seed = 0;  ///< 0 = derive from the master seed
  double crash_rate = 0.0;
  double mean_downtime = 20.0;
  std::uint64_t crash_at = 0;
  std::uint64_t restart_at = 0;
  double agent_crash_fraction = 0.0;
  std::uint64_t partition_at = 0;
  std::uint64_t heal_at = 0;
  double partition_fraction = 0.0;
  std::uint64_t burst_at = 0;
  std::uint64_t burst_until = 0;  ///< 0 = window never closes
  double burst_drop = 0.0;
  double slowdown_fraction = 0.0;
  double slowdown_ms = 0.0;
};

/// Projects the chaos_* fields of a validated Params.
ChaosParams chaos_params_from(const Params& params);

class ChaosEngine {
 public:
  /// `master_seed` seeds the engine when params.seed == 0 (salted, so the
  /// chaos stream never collides with any other derived stream).
  ChaosEngine(core::HirepSystem* system, ChaosParams params,
              std::uint64_t master_seed);

  /// Advances the fault clock to `tick`, firing every scripted event and
  /// random churn step in (now, tick].  Call once per completed
  /// transaction (tick = transactions run so far); calling with a tick in
  /// the past is a no-op.
  void advance_to(std::uint64_t tick);
  std::uint64_t now() const {
    util::MutexLock lock(mu_);
    return now_;
  }

  // -- wire-level queries (ChaosDelivery) ----------------------------------
  bool crashed(net::NodeIndex v) const;
  /// True when an active partition separates a and b.
  bool severed(net::NodeIndex a, net::NodeIndex b) const;
  bool burst_active() const {
    util::MutexLock lock(mu_);
    return burst_on_;
  }
  /// Draws from the engine's hop stream; call only while burst_active().
  bool draw_burst_drop();
  /// Extra per-hop delay contributed by node v (0 unless v is slowed).
  double slowdown_of(net::NodeIndex v) const;

  /// Fault bookkeeping, mirrored into the obs registry under sim.chaos.*.
  struct Counters {
    std::uint64_t scripted_crashes = 0;  ///< agents downed by crash_at
    std::uint64_t random_crashes = 0;    ///< churn crashes (crash_rate)
    std::uint64_t restarts = 0;          ///< nodes brought back up
    std::uint64_t partitions = 0;        ///< partition cuts applied
    std::uint64_t heals = 0;             ///< partition cuts healed
    std::uint64_t crash_drops = 0;       ///< hops lost to a crashed endpoint
    std::uint64_t partition_drops = 0;   ///< hops lost across the cut
    std::uint64_t burst_drops = 0;       ///< hops lost in a burst window
    std::uint64_t slowdown_hops = 0;     ///< hops given slowdown delay
  };
  /// Returns a consistent copy taken under the engine lock (the tallies
  /// mutate per hop, so a reference would be a torn read under load).
  Counters counters() const {
    util::MutexLock lock(mu_);
    return counters_;
  }

  // -- ChaosDelivery tallies -----------------------------------------------
  void note_crash_drop();
  void note_partition_drop();
  void note_burst_drop();
  void note_slowdown_hop();

 private:
  void step(std::uint64_t tick) HIREP_REQUIRES(mu_);
  void crash(net::NodeIndex v) HIREP_REQUIRES(mu_);
  void revive(net::NodeIndex v) HIREP_REQUIRES(mu_);

  core::HirepSystem* system_;
  ChaosParams params_;
  /// One lock over the whole fault schedule: advance_to mutations and the
  /// per-hop ChaosDelivery queries are serialized against each other, so
  /// the schedule replays identically whether or not delivery interleaves.
  mutable util::Mutex mu_;
  util::Rng rng_
      HIREP_GUARDED_BY(mu_);  ///< schedule stream (crashes, downtimes, sides)
  util::Rng hop_rng_ HIREP_GUARDED_BY(mu_);  ///< per-hop burst-loss stream
  std::uint64_t now_ HIREP_GUARDED_BY(mu_) = 0;
  bool partition_on_ HIREP_GUARDED_BY(mu_) = false;
  bool burst_on_ HIREP_GUARDED_BY(mu_) = false;
  std::vector<std::uint8_t> crashed_ HIREP_GUARDED_BY(mu_);
  std::vector<std::uint64_t> restart_tick_
      HIREP_GUARDED_BY(mu_);  ///< 0 = no pending restart
  std::vector<std::uint8_t> side_
      HIREP_GUARDED_BY(mu_);  ///< partition side (1 = minority)
  std::vector<std::uint8_t> slow_
      HIREP_GUARDED_BY(mu_);  ///< slowdown membership
  std::vector<net::NodeIndex> scripted_down_
      HIREP_GUARDED_BY(mu_);  ///< awaiting restart_at
  Counters counters_ HIREP_GUARDED_BY(mu_);
};

/// Wraps the run's configured DeliveryPolicy with the engine's fault
/// overlay.  The inner decision is drawn first (stream alignment); chaos
/// then forces a drop for crashed/severed hops, draws burst loss, and adds
/// slowdown delay.
class ChaosDelivery final : public net::DeliveryPolicy {
 public:
  ChaosDelivery(std::unique_ptr<net::DeliveryPolicy> inner,
                std::shared_ptr<ChaosEngine> engine)
      : inner_(std::move(inner)), engine_(std::move(engine)) {}

  net::HopDecision on_hop(const net::Envelope& envelope, net::NodeIndex from,
                          net::NodeIndex to) override;
  const char* name() const noexcept override { return "chaos"; }

 private:
  std::unique_ptr<net::DeliveryPolicy> inner_;
  std::shared_ptr<ChaosEngine> engine_;
};

/// One-call opt-in: returns nullptr (run untouched) when params.chaos is
/// not "on"; otherwise builds the engine, rebuilds the configured delivery
/// policy with the same seed derivation the system used, and installs the
/// ChaosDelivery wrapper on the system's transport.  Call advance_to()
/// with the running transaction count to drive the schedule.
std::shared_ptr<ChaosEngine> install_chaos(core::HirepSystem& system,
                                           const Params& params);

}  // namespace hirep::sim
