#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hirep::sim {

WorkloadGenerator::WorkloadGenerator(std::size_t nodes, std::uint64_t seed)
    : nodes_(nodes), rng_(seed) {
  if (nodes < 2) throw std::invalid_argument("need >= 2 nodes");
  popularity_order_.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    popularity_order_[i] = static_cast<net::NodeIndex>(i);
  }
  rng_.shuffle(popularity_order_);
}

Transaction WorkloadGenerator::uniform() {
  Transaction t;
  t.requestor = static_cast<net::NodeIndex>(rng_.below(nodes_));
  do {
    t.provider = static_cast<net::NodeIndex>(rng_.below(nodes_));
  } while (t.provider == t.requestor);
  return t;
}

std::vector<Transaction> WorkloadGenerator::uniform_batch(std::size_t count) {
  std::vector<Transaction> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(uniform());
  return out;
}

net::NodeIndex WorkloadGenerator::zipf_provider(double s) {
  if (s != cached_s_) {
    cdf_.resize(nodes_);
    double sum = 0.0;
    for (std::size_t rank = 1; rank <= nodes_; ++rank) {
      sum += 1.0 / std::pow(static_cast<double>(rank), s);
      cdf_[rank - 1] = sum;
    }
    for (double& v : cdf_) v /= sum;
    cached_s_ = s;
  }
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(it - cdf_.begin());
  return popularity_order_[std::min(rank, nodes_ - 1)];
}

Transaction WorkloadGenerator::zipf(double s) {
  Transaction t;
  t.requestor = static_cast<net::NodeIndex>(rng_.below(nodes_));
  do {
    t.provider = zipf_provider(s);
  } while (t.provider == t.requestor);
  return t;
}

std::vector<Transaction> WorkloadGenerator::zipf_batch(std::size_t count,
                                                       double s) {
  std::vector<Transaction> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(zipf(s));
  return out;
}

}  // namespace hirep::sim
