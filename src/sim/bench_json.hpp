// Machine-readable bench output ("hirep-bench-v1").
//
// Every bench binary accepts a `json=<path>` key (routed through
// bench_common.hpp) and, when set, writes one JSON document alongside its
// human-readable table: the exhibit table, the qualitative claim checks,
// the process-wide obs::Registry snapshot, and the wall-clock phase
// timings.  scripts/bench.sh assembles these per-exhibit documents into
// BENCH_figures.json; the schema itself is documented in EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "util/config.hpp"

namespace hirep::sim {

/// Name of the `json=` config key and the schema tag written into every
/// document — tests assert against these rather than string literals.
inline constexpr const char* kJsonOutputKey = "json";
inline constexpr const char* kBenchSchema = "hirep-bench-v1";

/// Consumes the `json=` key from `cfg` (so it never trips the
/// unused-parameter warning) and returns the output path, empty when the
/// key was not supplied.
std::string json_output_path(const util::Config& cfg);

/// Serialises one exhibit run as a complete hirep-bench-v1 document.
void write_bench_json(std::ostream& out, const std::string& title,
                      const ExperimentResult& result, const util::Config& cfg,
                      const obs::Snapshot& snapshot);

/// File-opening wrapper; throws std::runtime_error when `path` cannot be
/// opened for writing.
void write_bench_json_file(const std::string& path, const std::string& title,
                           const ExperimentResult& result,
                           const util::Config& cfg,
                           const obs::Snapshot& snapshot);

}  // namespace hirep::sim
