// Attack scenarios from the robustness analysis (paper §4.2), executable
// against a live HirepSystem.  Each returns enough detail for tests and the
// attack-resilience example to assert the paper's claims.
#pragma once

#include <cstddef>
#include <vector>

#include "hirep/system.hpp"

namespace hirep::sim {

// ---- §4.2.2 identity manipulation -----------------------------------------

/// Identity spoofing: `attacker` forges a transaction report in `victim`'s
/// name (victim's nodeId, attacker's signature) and submits it to one of
/// the victim's would-be agents.  Returns true iff the agent *accepted* the
/// forgery — hiREP guarantees false.
bool attempt_report_spoof(core::HirepSystem& system, net::NodeIndex attacker,
                          net::NodeIndex victim, net::NodeIndex agent_ip,
                          net::NodeIndex subject);

/// Man-in-the-middle key substitution during the Figure-3 handshake: the
/// attacker answers the anonymity-key request with its own key.  Returns
/// true iff the requestor accepted the substituted key — must be false.
bool attempt_mitm_key_substitution(core::HirepSystem& system,
                                   net::NodeIndex requestor,
                                   net::NodeIndex relay,
                                   net::NodeIndex attacker);

/// Replay: captures one of `owner`'s onions, then tries to reuse it after
/// the owner has issued a fresher one.  Returns true iff the stale onion
/// was still routed — must be false.
bool attempt_onion_replay(core::HirepSystem& system, net::NodeIndex owner);

// ---- §4.2.1 trusted-agent manipulation -------------------------------------

/// Builds `list_count` hostile recommendation lists that bad-mouth
/// `good_agents` (minimum weight) and ballot-stuff `shill_agents` (maximum
/// weight), for mixing into rank_and_select inputs.
std::vector<std::vector<core::AgentEntry>> hostile_recommendations(
    core::HirepSystem& system, const std::vector<net::NodeIndex>& good_agents,
    const std::vector<net::NodeIndex>& shill_agents, std::size_t list_count);

// ---- §4.2.4 DoS -------------------------------------------------------------

/// Takes the `count` most-referenced agents offline (the strongest DoS an
/// attacker who has somehow identified the high-performance agents could
/// mount).  Returns the victims.
std::vector<net::NodeIndex> dos_top_agents(core::HirepSystem& system,
                                           std::size_t count);

/// Popularity census: how many peers currently list each agent.
std::vector<std::pair<net::NodeIndex, std::size_t>> agent_popularity(
    core::HirepSystem& system);

// ---- Sybil (§4.2.2) ---------------------------------------------------------

/// A Sybil attacker operating `count` malicious agent identities: flips the
/// `count` least-referenced currently-good agents to malicious evaluators
/// (each Sybil identity behaves like one more bad agent; hiREP's defense is
/// per-identity expertise filtering).  Returns the converted nodes.
std::vector<net::NodeIndex> sybil_corrupt_agents(core::HirepSystem& system,
                                                 std::size_t count);

}  // namespace hirep::sim
