// Sliding-window MSE tracker for the accuracy-vs-transactions curves.
//
// The window slides by adding the newest squared error and subtracting the
// oldest; with a naive running sum the subtraction step accumulates
// floating-point drift, so after enough slides the reported MSE diverges
// from the true window mean (and can even go slightly negative on
// near-zero windows).  The sum is therefore kept with Neumaier's
// compensated summation: every add carries the rounding remainder in a
// second accumulator, which keeps the window sum exact to within one ulp
// of the true value regardless of how many transactions have passed.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>

namespace hirep::sim {

class WindowedMse {
 public:
  explicit WindowedMse(std::size_t window) : window_(window) {}

  void add(double estimate, double truth) {
    const double e = estimate - truth;
    values_.push_back(e * e);
    accumulate(e * e);
    if (values_.size() > window_) {
      accumulate(-values_.front());
      values_.pop_front();
    }
  }

  double mse() const {
    if (values_.empty()) return 0.0;
    // A window of true zeros must report exactly 0, and compensation can
    // leave a tiny negative residue — clamp it away.
    const double total = sum_ + compensation_;
    return total <= 0.0 ? 0.0 : total / static_cast<double>(values_.size());
  }

  std::size_t size() const noexcept { return values_.size(); }

 private:
  void accumulate(double v) {
    const double t = sum_ + v;
    if (std::abs(sum_) >= std::abs(v)) {
      compensation_ += (sum_ - t) + v;
    } else {
      compensation_ += (v - t) + sum_;
    }
    sum_ = t;
  }

  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace hirep::sim
