// Figure 8 — cumulative response time of the trust-value request process:
// the time from a peer sending the request until it holds the trust value.
//
// Voting: a timed TTL flood, votes returned hop-by-hop along the BFS tree,
// response complete when the requestor has handled the LAST vote (it needs
// all of them to aggregate).  hiREP: requests leave in parallel through the
// agents' onions; the response is complete when the slowest agent's answer
// has returned through the requestor's reply onion.  Both run on the same
// queueing model (per-link propagation + serial per-message processing).
#pragma once

#include "hirep/system.hpp"
#include "sim/experiment.hpp"
#include "sim/params.hpp"

namespace hirep::sim {

/// One hiREP trust query's response time (ms), measured from a quiet
/// network.  Counts the timed messages into the overlay metrics too.
double hirep_query_response_ms(core::HirepSystem& system,
                               net::NodeIndex requestor,
                               net::NodeIndex subject);

/// Figure 8 table: cumulative response time vs transactions; series
/// voting, hirep-10, hirep-7, hirep-5 (relays per onion).  `execution`
/// selects how average_over_seeds schedules repetitions; kParallel is
/// byte-identical to kSerial (pinned by tests/sim/experiment_test.cpp).
ExperimentResult run_fig8_response(
    const Params& params,
    SeedExecution execution = SeedExecution::kParallel);

}  // namespace hirep::sim
