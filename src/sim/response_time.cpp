#include "sim/response_time.hpp"

#include <algorithm>

namespace hirep::sim {

double hirep_query_response_ms(core::HirepSystem& system,
                               net::NodeIndex requestor,
                               net::NodeIndex subject) {
  (void)subject;  // the timing depends only on the paths, not the subject
  auto& overlay = system.overlay();
  overlay.reset_time_state();
  core::Peer& p = system.peer(requestor);

  // The reply path back into the requestor (its own onion's route).
  const auto reply_path = p.relay_path();

  double last = 0.0;
  for (const auto& entry : p.agents().entries()) {
    if (entry.relay_path.empty()) continue;
    const auto ip = system.ip_of(entry.agent_id);
    if (!ip || !system.agent_online(*ip)) continue;

    // Request: requestor -> entry relay chain -> agent.  Circuits are
    // independent and evaluated out of time order, so they use the
    // stateless cost model (propagation + per-hop processing).
    std::vector<net::NodeIndex> out_path;
    out_path.reserve(entry.relay_path.size() + 1);
    out_path.push_back(requestor);
    out_path.insert(out_path.end(), entry.relay_path.begin(),
                    entry.relay_path.end());
    const double at_agent =
        overlay.stateless_path(0.0, out_path, net::MessageKind::kTrustRequest);

    // Response: agent -> requestor's reply onion, except the final hop into
    // the requestor, which serializes: the requestor ingests the c
    // responses one at a time.
    std::vector<net::NodeIndex> back_path;
    back_path.reserve(reply_path.size() + 1);
    back_path.push_back(*ip);
    back_path.insert(back_path.end(), reply_path.begin(), reply_path.end());
    const net::NodeIndex last_relay = back_path[back_path.size() - 2];
    std::vector<net::NodeIndex> to_relay(back_path.begin(), back_path.end() - 1);
    const double at_relay = overlay.stateless_path(
        at_agent, to_relay, net::MessageKind::kTrustResponse);
    const double at_peer = overlay.timed_send(at_relay, last_relay, requestor,
                                              net::MessageKind::kTrustResponse);
    last = std::max(last, at_peer);
  }
  return last;
}

ExperimentResult run_fig8_response(const Params& params,
                                   SeedExecution execution) {
  const std::size_t total = params.transactions;
  const std::size_t step = std::max<std::size_t>(1, total / 10);
  std::vector<std::size_t> checkpoints;
  for (std::size_t t = step; t <= total; t += step) checkpoints.push_back(t);

  auto hirep_series = [&](std::size_t relays) {
    return average_over_seeds(params, [&](std::uint64_t seed) {
      Params p = params;
      p.seed = seed;
      p.relays_per_onion = relays;
      core::HirepSystem system(p.hirep_options());
      std::vector<double> ys;
      double cumulative = 0.0;
      std::size_t next = 0;
      for (std::size_t t = 1; t <= total; ++t) {
        auto& rng = system.rng();
        const auto requestor =
            static_cast<net::NodeIndex>(rng.below(system.node_count()));
        net::NodeIndex provider = requestor;
        while (provider == requestor) {
          provider = static_cast<net::NodeIndex>(rng.below(system.node_count()));
        }
        cumulative += hirep_query_response_ms(system, requestor, provider);
        // Keep the reputation dynamics running so the measured system is
        // the live one (expertise updates, reports, maintenance).
        system.run_transaction(requestor, provider);
        if (next < checkpoints.size() && t == checkpoints[next]) {
          ys.push_back(cumulative);
          ++next;
        }
      }
      return ys;
    }, execution);
  };

  auto voting = average_over_seeds(params, [&](std::uint64_t seed) {
    Params p = params;
    p.seed = seed;
    baselines::PureVotingSystem system(p.voting_options());
    std::vector<double> ys;
    double cumulative = 0.0;
    std::size_t next = 0;
    for (std::size_t t = 1; t <= total; ++t) {
      const auto rec_requestor =
          static_cast<net::NodeIndex>(system.rng().below(system.options().nodes));
      net::NodeIndex provider = rec_requestor;
      while (provider == rec_requestor) {
        provider =
            static_cast<net::NodeIndex>(system.rng().below(system.options().nodes));
      }
      cumulative += system.poll_timed(rec_requestor, provider).response_ms;
      if (next < checkpoints.size() && t == checkpoints[next]) {
        ys.push_back(cumulative);
        ++next;
      }
    }
    return ys;
  }, execution);

  const auto h10 = hirep_series(10);
  const auto h7 = hirep_series(7);
  const auto h5 = hirep_series(5);

  util::Table table(
      {"transactions", "voting", "hirep-10", "hirep-7", "hirep-5"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.add_row({static_cast<std::int64_t>(checkpoints[i]), voting[i],
                   h10[i], h7[i], h5[i]});
  }

  ExperimentResult result{std::move(table), {}};
  result.checks.push_back(
      {"fewer onion relays -> lower response time (hirep-5 < hirep-7 < hirep-10)",
       h5.back() < h7.back() && h7.back() < h10.back(),
       "h5=" + std::to_string(h5.back()) + " h7=" + std::to_string(h7.back()) +
           " h10=" + std::to_string(h10.back())});
  result.checks.push_back(
      {"average hirep response time below pure voting (Fig 8)",
       h10.back() < voting.back(),
       "hirep-10=" + std::to_string(h10.back()) + " voting=" +
           std::to_string(voting.back())});
  return result;
}

}  // namespace hirep::sim
