// sim::Adversary — deterministic, tick-driven attack campaigns against a
// live reputation system (paper §4 threat analysis, run as *sustained*
// strategies instead of the one-shot probes in sim/attacks.hpp).
//
// The engine mirrors the ChaosEngine design: it advances on the
// transaction tick, every stochastic choice draws from its own salted
// seeded Rng (never from the simulation's main stream), and the whole
// stack is opt-in through sim::Scenario (`adversary=on` plus the
// adversary_* knobs) — with adversary=off install_adversary() returns
// nullptr and the run is bit-identical to a build without the engine.
//
// Unlike chaos, the adversary never touches the wire: every campaign
// action is a *state* mutation (GroundTruth behavior modes, §3.5 key
// rotation, open-membership joins) applied inside advance_to() at a tick
// boundary between run_transactions() batches.  That is what makes
// adversarial runs byte-identical across the serial, parallel, and
// sharded executors — no delivery-order dependence is ever introduced,
// so Scenario::execution_policy() performs no downgrade for adversary=on.
//
// Strategies (each armed by its count knob, composable, tick-scheduled):
//   * collusive bad-mouthing ring — a seeded clique that files
//     minimum-weight reports against good-provider targets and
//     ballot-stuffs its members (the sustained generalization of
//     attacks.hpp hostile_recommendations, exposed via
//     ring_recommendations());
//   * sybil floods — waves of fresh identities joining as malicious
//     evaluators/agents, plus corruption of the least-referenced
//     currently-good agents (attacks.hpp sybil_corrupt_agents);
//   * whitewashing — malicious peers that rotate their key (§3.5) once
//     the community's estimate of them collapses below a threshold; on
//     architectures without standing migration this degrades to wiping
//     the identity-keyed reputation store (reset_reputation);
//   * on-off oscillators — bad peers that play nice until trusted, then
//     defect in bursts;
//   * front peers — honest service, dishonest evaluation and reporting.
//
// The static Figure-7 strategy (a fixed malicious_ratio applied at world
// bootstrap) is deliberately degenerate: the engine records it in its
// params but performs no runtime action, so fig7 runs with the engine
// installed are byte-identical to engine-off runs at the same ratio.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hirep/system.hpp"
#include "net/graph.hpp"
#include "sim/params.hpp"
#include "trust/ground_truth.hpp"
#include "util/annotations.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace hirep::sim {

/// The campaign schedule, decoupled from the full Params bag.  *_at knobs
/// use 0 as "at install" (a strategy is off when its count is 0); see
/// Params for per-field documentation.
struct AdversaryParams {
  std::uint64_t seed = 0;  ///< 0 = derive from the master seed
  // Workload context: recruit/target selection pools (0 = population).
  std::size_t requestor_pool = 0;
  std::size_t provider_pool = 0;
  // Collusive bad-mouthing ring.
  std::size_t ring_size = 0;
  std::uint64_t ring_at = 0;
  std::size_t ring_targets = 4;
  // Sybil floods.
  std::size_t sybil_count = 0;
  std::uint64_t sybil_at = 0;
  std::uint64_t sybil_period = 0;  ///< 0 = a single wave
  std::size_t sybil_corrupt = 0;
  // Whitewashing via §3.5 key rotation.
  std::size_t whitewash_count = 0;
  double whitewash_threshold = 0.3;
  std::uint64_t whitewash_cooldown = 10;
  // On-off oscillators.
  std::size_t oscillator_count = 0;
  double oscillator_on = 0.7;
  std::uint64_t oscillator_burst = 5;
  // Front peers.
  std::size_t front_count = 0;
  std::uint64_t front_at = 0;
  /// The degenerate static Figure-7 strategy: the world's bootstrap
  /// malicious_ratio, mirrored for introspection only (no runtime action).
  double static_ratio = 0.0;
};

/// Projects the adversary_* fields of a validated Params.
AdversaryParams adversary_params_from(const Params& params);

/// The capability surface the engine drives.  HirepAdversaryHost
/// implements everything; baseline hosts (bench/adversary_curves.cpp)
/// implement what their architecture actually has, and the engine adapts:
/// sybil waves fall back to corrupting existing evaluators where there is
/// no open membership, whitewashing falls back to wiping the
/// identity-keyed store where there is no §3.5 standing migration.
class AdversaryHost {
 public:
  virtual ~AdversaryHost() = default;
  virtual trust::GroundTruth& truth() = 0;
  virtual std::size_t node_count() const = 0;
  /// Open membership: spawn one fresh identity (sybil waves).  Hosts
  /// without open membership return nullopt.
  virtual std::optional<net::NodeIndex> spawn_identity() {
    return std::nullopt;
  }
  /// §3.5 key rotation.  Returns true when the architecture migrates the
  /// peer's standing to the new key (hiREP); false sends the engine to
  /// reset_reputation() — what a fresh identity achieves in a store keyed
  /// by identity.
  virtual bool rotate_identity(net::NodeIndex /*v*/) { return false; }
  /// Forget every stored opinion about (and by) v.
  virtual void reset_reputation(net::NodeIndex /*v*/) {}
  /// Flip up to `count` least-referenced currently-good agents to
  /// malicious (attacks.hpp sybil_corrupt_agents); returns the converts.
  virtual std::vector<net::NodeIndex> corrupt_fringe_agents(
      std::size_t /*count*/) {
    return {};
  }
  /// Hostile recommendation lists bad-mouthing `targets` and
  /// ballot-stuffing `members` (attacks.hpp hostile_recommendations);
  /// empty on hosts without agent lists.
  virtual std::vector<std::vector<core::AgentEntry>> hostile_lists(
      const std::vector<net::NodeIndex>& /*targets*/,
      const std::vector<net::NodeIndex>& /*members*/,
      std::size_t /*list_count*/) {
    return {};
  }
};

/// Full-capability host over a live HirepSystem.
class HirepAdversaryHost final : public AdversaryHost {
 public:
  explicit HirepAdversaryHost(core::HirepSystem* system) : system_(system) {}
  trust::GroundTruth& truth() override { return system_->truth(); }
  std::size_t node_count() const override { return system_->node_count(); }
  std::optional<net::NodeIndex> spawn_identity() override;
  bool rotate_identity(net::NodeIndex v) override;
  std::vector<net::NodeIndex> corrupt_fringe_agents(
      std::size_t count) override;
  std::vector<std::vector<core::AgentEntry>> hostile_lists(
      const std::vector<net::NodeIndex>& targets,
      const std::vector<net::NodeIndex>& members,
      std::size_t list_count) override;

 private:
  core::HirepSystem* system_;
};

class Adversary {
 public:
  /// `master_seed` seeds the engine when params.seed == 0 (salted, so the
  /// adversary stream never collides with any other derived stream).
  /// Strategies whose *_at knob is 0 activate here, before the first
  /// transaction; recruitment draws happen in a fixed order (ring, fronts,
  /// whitewashers, oscillators, sybil wave) for deterministic replay.
  Adversary(std::unique_ptr<AdversaryHost> host, AdversaryParams params,
            std::uint64_t master_seed);

  /// Advances the campaign clock to `tick`, firing every scheduled
  /// activation and trigger-driven action in (now, tick].  Call at batch
  /// boundaries (tick = transactions run so far); a tick in the past is a
  /// no-op.
  void advance_to(std::uint64_t tick);
  std::uint64_t now() const {
    util::MutexLock lock(mu_);
    return now_;
  }

  /// Feedback channel: the community's estimate observed for `provider`
  /// in a completed transaction.  Drives the whitewash trigger (rotate
  /// once the estimate collapses) and the oscillator phase flip (defect
  /// once trusted).  Feed every record of a batch before advancing the
  /// clock past it.
  void observe(net::NodeIndex provider, double estimate);
  /// Convenience over any record type with provider/estimate fields.
  template <typename Records>
  void observe_records(const Records& records) {
    for (const auto& r : records) observe(r.provider, r.estimate);
  }

  /// Campaign bookkeeping, mirrored into the obs registry under
  /// sim.adversary.*.
  struct Counters {
    std::uint64_t ring_recruits = 0;      ///< clique members recruited
    std::uint64_t ring_targets_marked = 0;///< providers under bad-mouthing
    std::uint64_t sybil_joins = 0;        ///< fresh identities spawned
    std::uint64_t sybil_evaluator_corruptions = 0;  ///< no-membership fallback
    std::uint64_t sybil_agent_corruptions = 0;      ///< fringe agents flipped
    std::uint64_t whitewash_rotations = 0;///< §3.5 rotations performed
    std::uint64_t whitewash_resets = 0;   ///< identity-keyed stores wiped
    std::uint64_t oscillator_defections = 0;
    std::uint64_t oscillator_recoveries = 0;
    std::uint64_t front_recruits = 0;
  };
  /// A consistent copy taken under the engine lock.
  Counters counters() const {
    util::MutexLock lock(mu_);
    return counters_;
  }

  // -- introspection (tests / exhibits) ------------------------------------
  std::vector<net::NodeIndex> ring_members() const;
  std::vector<net::NodeIndex> ring_targets() const;
  std::vector<net::NodeIndex> whitewashers() const;
  std::vector<net::NodeIndex> oscillators() const;
  std::vector<net::NodeIndex> front_peers() const;
  /// Every node a sybil wave has touched so far: spawned identities and
  /// fringe agents flipped by corrupt_fringe_agents, in action order.
  std::vector<net::NodeIndex> sybil_converts() const;
  const AdversaryParams& params() const noexcept { return params_; }

  /// The ring's §4.2.1 manipulation payload: `list_count` hostile
  /// recommendation lists bad-mouthing the campaign targets and
  /// ballot-stuffing the clique (generalizes attacks.hpp
  /// hostile_recommendations to the live ring membership).  Empty before
  /// the ring forms or on hosts without agent lists.
  std::vector<std::vector<core::AgentEntry>> ring_recommendations(
      std::size_t list_count) const;

 private:
  void step(std::uint64_t tick) HIREP_REQUIRES(mu_);
  void form_ring() HIREP_REQUIRES(mu_);
  void recruit_fronts() HIREP_REQUIRES(mu_);
  void recruit_whitewashers() HIREP_REQUIRES(mu_);
  void recruit_oscillators() HIREP_REQUIRES(mu_);
  void sybil_wave() HIREP_REQUIRES(mu_);
  /// Samples `count` distinct unclaimed nodes satisfying `pred` from the
  /// first `pool` node indices (0 = whole population), in ascending-index
  /// candidate order, and claims them.
  template <typename Pred>
  std::vector<net::NodeIndex> recruit(std::size_t pool, std::size_t count,
                                      Pred pred) HIREP_REQUIRES(mu_);

  /// Per-peer trigger state for the estimate-driven strategies.
  struct Tracked {
    net::NodeIndex peer = net::kInvalidNode;
    double estimate = -1.0;  ///< last observed; < 0 = none since last action
    std::uint64_t last_action = 0;
    bool defecting = false;
    std::uint64_t defect_until = 0;
  };

  std::unique_ptr<AdversaryHost> host_;
  AdversaryParams params_;
  /// One lock over the whole campaign: advance_to mutations and observe()
  /// feedback are serialized, so a schedule replays identically however
  /// the caller interleaves them between batches.
  mutable util::Mutex mu_;
  util::Rng rng_ HIREP_GUARDED_BY(mu_);  ///< the engine's only RNG stream
  std::uint64_t now_ HIREP_GUARDED_BY(mu_) = 0;
  std::uint64_t next_sybil_ HIREP_GUARDED_BY(mu_);  ///< kNever = disarmed
  bool ring_formed_ HIREP_GUARDED_BY(mu_) = false;
  bool fronts_recruited_ HIREP_GUARDED_BY(mu_) = false;
  std::vector<std::uint8_t> claimed_ HIREP_GUARDED_BY(mu_);
  std::vector<net::NodeIndex> ring_members_ HIREP_GUARDED_BY(mu_);
  std::vector<net::NodeIndex> ring_targets_ HIREP_GUARDED_BY(mu_);
  std::vector<net::NodeIndex> fronts_ HIREP_GUARDED_BY(mu_);
  std::vector<net::NodeIndex> sybil_converts_ HIREP_GUARDED_BY(mu_);
  std::vector<Tracked> whitewash_ HIREP_GUARDED_BY(mu_);
  std::vector<Tracked> oscillators_ HIREP_GUARDED_BY(mu_);
  Counters counters_ HIREP_GUARDED_BY(mu_);
};

/// One-call opt-in: returns nullptr (run untouched) when params.adversary
/// is not "on"; otherwise builds the engine over a full-capability
/// HirepSystem host.  Call advance_to() with the running transaction
/// count — and feed records through observe_records() — at every batch
/// boundary.
std::shared_ptr<Adversary> install_adversary(core::HirepSystem& system,
                                             const Params& params);

}  // namespace hirep::sim
