// Concrete invariant checkers over the check registry.  Each primitive
// returns true when the invariant holds and reports a structured Violation
// when it does not; none of them throws, draws randomness, or changes any
// observable simulation state, so wiring them into hot paths leaves golden
// figure values bit-identical.
//
// The paper invariants these enforce:
//   * MonotoneSequence — onion `sq` is "the non-decrease sequence number"
//     (§3.3): per issuer, and per (issuer, holder) entry, sq never moves
//     backward.
//   * unit_interval — trust values, transaction outcomes, and the expertise
//     EWMA `alpha*A_c + (1-alpha)*A_p` all live in [0,1] (§3.4.3).
//   * monotone_clock — the discrete-event clock never runs backward.
//   * conserved — every envelope the transport accepted is accounted for:
//     sent == delivered + dropped + in-flight at teardown.
//   * binding — nodeId = SHA-1(SP): an accepted signed message must carry a
//     key that hashes to the id it claims (§3.3's man-in-the-middle
//     foreclosure).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "check/check.hpp"

namespace hirep::check {

/// Per-(issuer, holder) non-decreasing sequence tracking.  Instances are
/// intentionally *not* global: identities can collide across independently
/// seeded systems (determinism tests run identical worlds side by side), so
/// each system owns its tracker.  Storage is a hash map (O(1) at 100k
/// pairs) behind an internal mutex so scale-engine lanes may note
/// concurrently; the mutex lives behind a unique_ptr to keep instances
/// movable (peers holding one live in vectors).
class MonotoneSequence {
 public:
  explicit MonotoneSequence(std::string invariant)
      : invariant_(std::move(invariant)) {}

  /// Records sq for (issuer, holder); reports and returns false when it is
  /// lower than the last value seen for that pair.
  bool note(std::uint64_t issuer, std::uint64_t holder, std::uint64_t sq,
            double tick = -1.0);

  /// Drops the pair's history (entry evicted / re-discovered: the paper's
  /// revocation floor, not per-holder history, governs across lifetimes).
  void forget(std::uint64_t issuer, std::uint64_t holder);

 private:
  struct Key {
    std::uint64_t issuer;
    std::uint64_t holder;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t x = k.issuer ^ (k.holder * 0x9e3779b97f4a7c15ULL);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };
  std::string invariant_;
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::unordered_map<Key, std::uint64_t, KeyHash> last_;
};

/// True when value is finite and inside [0,1] (with eps slack for float
/// accumulation); reports otherwise.
bool unit_interval(const char* invariant, double value,
                   std::uint64_t actor = 0, std::uint64_t subject = 0);

/// True when `at >= now` (the event being executed does not precede the
/// clock); reports otherwise.
bool monotone_clock(const char* invariant, double now, double at);

/// True when sent == delivered + dropped + in_flight; reports otherwise.
bool conserved(const char* invariant, std::uint64_t sent,
               std::uint64_t delivered, std::uint64_t dropped,
               std::uint64_t in_flight, const char* context);

/// True when `bound` (the claimed id matches the hash of the key, computed
/// by the caller); reports otherwise.  Split out so crypto-layer call sites
/// stay one line.
bool binding(const char* invariant, bool bound, std::uint64_t actor = 0,
             std::uint64_t subject = 0);

/// True when a guarded action's precondition held at the moment it ran;
/// reports otherwise.  Guards state transitions that must only happen with
/// fresh evidence — e.g. the §3.4.3 recovery rule that a quarantined agent
/// never re-enters a trusted list without a successful probe.
bool gate(const char* invariant, bool precondition_held, const char* context,
          std::uint64_t actor = 0, std::uint64_t subject = 0);

}  // namespace hirep::check
