// Runtime protocol-invariant checking (hirep::check).
//
// hiREP's guarantees are stated as invariants — onion sequence numbers are
// non-decreasing, nodeId = SHA-1(SP) binds identity to the signature key,
// trust values and the EWMA expertise update stay in [0,1], the event clock
// never runs backward, and every envelope the transport accepts is either
// delivered or dropped.  This module gives those invariants a single place
// to be *observed* at runtime: hot paths call cheap checkers (see
// invariants.hpp) which report structured Violations into a process-wide
// registry instead of asserting, so a violation is visible to tests and
// operators without changing simulation behaviour (no RNG draws, no control
// flow changes — golden figure values are bit-identical with checks on).
//
// Compile-time gate: the HIREP_CHECKS CMake option defines
// HIREP_CHECKS_ENABLED for every target; call sites wrap their wiring in
// `if constexpr (check::kEnabled)` so an OFF build compiles the checks away
// entirely.  The checker primitives themselves always work when invoked
// directly, which lets the negative tests prove each one fires regardless
// of the build flavour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hirep::check {

#if !defined(HIREP_CHECKS_ENABLED)
#define HIREP_CHECKS_ENABLED 1
#endif

/// True when invariant wiring is compiled into the hot paths.
inline constexpr bool kEnabled = HIREP_CHECKS_ENABLED != 0;

/// A structured invariant-violation report.
struct Violation {
  std::string invariant;  ///< dotted name, e.g. "onion.sq.issuer_monotone"
  std::string detail;     ///< human-readable context (values involved)
  double tick = -1.0;     ///< sim-clock time when known, else -1
  std::uint64_t actor = 0;    ///< primary peer/node id (issuer, sender, ...)
  std::uint64_t subject = 0;  ///< secondary id (holder, receiver, ...)
};

/// Records a violation.  Thread-safe: parallel sweeps report concurrently.
/// The first occurrence of each invariant name is echoed to stderr; the
/// registry keeps a bounded list so a hot loop cannot exhaust memory.
void report(Violation violation);

/// Number of violations recorded (and not yet cleared) process-wide.
std::size_t violation_count() noexcept;

/// Snapshot of the recorded violations.
std::vector<Violation> violations();

/// Clears the registry (test isolation).
void clear() noexcept;

/// RAII capture: while alive, reports land in this capture instead of the
/// global registry.  Captures nest (innermost wins) but are not themselves
/// thread-safe — use from single-threaded tests only.
class ScopedCapture {
 public:
  ScopedCapture();
  ~ScopedCapture();
  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

  const std::vector<Violation>& captured() const noexcept { return captured_; }
  std::size_t count() const noexcept { return captured_.size(); }
  bool fired(const std::string& invariant) const;

 private:
  friend void report(Violation);
  std::vector<Violation> captured_;
  ScopedCapture* previous_ = nullptr;
};

}  // namespace hirep::check
