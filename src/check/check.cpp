#include "check/check.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace hirep::check {

namespace {

// A violation is an implementation bug, not a steady state; the registry
// keeps enough to diagnose and refuses to balloon if a hot loop misbehaves.
constexpr std::size_t kMaxStored = 1024;

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

struct Registry {
  std::vector<Violation> stored;
  std::size_t total = 0;                  // including entries past kMaxStored
  std::vector<std::string> echoed;        // invariant names already printed
  ScopedCapture* capture = nullptr;       // innermost active capture
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void report(Violation violation) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  Registry& r = registry();
  if (r.capture != nullptr) {
    r.capture->captured_.push_back(std::move(violation));
    return;
  }
  ++r.total;
  const bool seen =
      std::find(r.echoed.begin(), r.echoed.end(), violation.invariant) !=
      r.echoed.end();
  if (!seen) {
    std::fprintf(stderr,
                 "[hirep::check] invariant violated: %s (%s) tick=%.3f "
                 "actor=%llu subject=%llu\n",
                 violation.invariant.c_str(), violation.detail.c_str(),
                 violation.tick,
                 static_cast<unsigned long long>(violation.actor),
                 static_cast<unsigned long long>(violation.subject));
    r.echoed.push_back(violation.invariant);
  }
  if (r.stored.size() < kMaxStored) r.stored.push_back(std::move(violation));
}

std::size_t violation_count() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return registry().total;
}

std::vector<Violation> violations() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return registry().stored;
}

void clear() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  Registry& r = registry();
  r.stored.clear();
  r.echoed.clear();
  r.total = 0;
}

ScopedCapture::ScopedCapture() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  previous_ = registry().capture;
  registry().capture = this;
}

ScopedCapture::~ScopedCapture() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().capture = previous_;
}

bool ScopedCapture::fired(const std::string& invariant) const {
  return std::any_of(captured_.begin(), captured_.end(),
                     [&](const Violation& v) { return v.invariant == invariant; });
}

}  // namespace hirep::check
