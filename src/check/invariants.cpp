#include "check/invariants.hpp"

#include <cmath>
#include <string>

namespace hirep::check {

namespace {

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

bool MonotoneSequence::note(std::uint64_t issuer, std::uint64_t holder,
                            std::uint64_t sq, double tick) {
  std::lock_guard<std::mutex> lock(*mu_);
  const auto [it, inserted] = last_.try_emplace(Key{issuer, holder}, sq);
  if (inserted) return true;
  if (sq < it->second) {
    report({invariant_,
            "sq " + std::to_string(sq) + " < last " +
                std::to_string(it->second),
            tick, issuer, holder});
    return false;
  }
  it->second = sq;
  return true;
}

void MonotoneSequence::forget(std::uint64_t issuer, std::uint64_t holder) {
  std::lock_guard<std::mutex> lock(*mu_);
  last_.erase(Key{issuer, holder});
}

bool unit_interval(const char* invariant, double value, std::uint64_t actor,
                   std::uint64_t subject) {
  constexpr double kEps = 1e-9;
  if (std::isfinite(value) && value >= -kEps && value <= 1.0 + kEps) {
    return true;
  }
  report({invariant, "value " + number(value) + " outside [0,1]", -1.0, actor,
          subject});
  return false;
}

bool monotone_clock(const char* invariant, double now, double at) {
  if (at >= now) return true;
  report({invariant, "event at " + number(at) + " precedes clock " + number(now),
          now, 0, 0});
  return false;
}

bool conserved(const char* invariant, std::uint64_t sent,
               std::uint64_t delivered, std::uint64_t dropped,
               std::uint64_t in_flight, const char* context) {
  if (sent == delivered + dropped + in_flight) return true;
  report({invariant,
          std::string(context) + ": sent " + std::to_string(sent) +
              " != delivered " + std::to_string(delivered) + " + dropped " +
              std::to_string(dropped) + " + in-flight " +
              std::to_string(in_flight),
          -1.0, 0, 0});
  return false;
}

bool binding(const char* invariant, bool bound, std::uint64_t actor,
             std::uint64_t subject) {
  if (bound) return true;
  report({invariant, "nodeId != SHA-1(SP) for an accepted signed message",
          -1.0, actor, subject});
  return false;
}

bool gate(const char* invariant, bool precondition_held, const char* context,
          std::uint64_t actor, std::uint64_t subject) {
  if (precondition_held) return true;
  report({invariant,
          std::string(context) + ": guarded action ran without its "
                                 "precondition",
          -1.0, actor, subject});
  return false;
}

}  // namespace hirep::check
