#include "onion/relay.hpp"

#include "util/bytes.hpp"

namespace hirep::onion {

namespace {

// Wire tags keep the three encrypted payload types unambiguous.
constexpr std::uint8_t kTagKeyResponse = 0x01;
constexpr std::uint8_t kTagVerification = 0x02;
constexpr std::uint8_t kTagConfirmation = 0x03;

}  // namespace

util::Bytes HonestRelay::key_response(util::Rng& rng,
                                      const crypto::RsaPublicKey& requestor_ap,
                                      net::NodeIndex requestor_ip) {
  (void)requestor_ip;  // an honest relay replies to whoever asked
  pending_nonce_ = rng();
  have_pending_ = true;
  util::ByteWriter w;
  w.u8(kTagKeyResponse);
  w.blob(identity_->anonymity_public().serialize());
  w.u32(ip_);
  w.u64(pending_nonce_);
  return crypto::rsa_encrypt_bytes(rng, requestor_ap, w.bytes());
}

std::optional<util::Bytes> HonestRelay::key_confirm(
    util::Rng& rng, const util::Bytes& verification) {
  const auto plain =
      crypto::rsa_decrypt_bytes(identity_->anonymity_private(), verification);
  if (!plain || !have_pending_) return std::nullopt;
  try {
    util::ByteReader r(*plain);
    if (r.u8() != kTagVerification) return std::nullopt;
    const util::Bytes requestor_key = r.blob();
    const net::NodeIndex requestor_ip = r.u32();
    const std::uint64_t nonce = r.u64();
    if (!r.done() || nonce != pending_nonce_) return std::nullopt;
    have_pending_ = false;

    const auto requestor_ap = crypto::RsaPublicKey::deserialize(requestor_key);
    util::ByteWriter w;
    w.u8(kTagConfirmation);
    w.u32(ip_);
    w.u64(nonce);
    (void)requestor_ip;
    return crypto::rsa_encrypt_bytes(rng, requestor_ap, w.bytes());
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

std::optional<RelayInfo> fetch_anonymity_key(net::Overlay& overlay,
                                             util::Rng& rng,
                                             const crypto::Identity& requestor,
                                             net::NodeIndex requestor_ip,
                                             RelayEndpoint& relay) {
  using net::MessageKind;

  // Step 1: (R_o, AP_p, IP_p) — plaintext request.
  overlay.count_send(MessageKind::kKeyExchange);

  // Step 2: AP_p(AP_k, IP_k, nonce).
  overlay.count_send(MessageKind::kKeyExchange);
  const util::Bytes response =
      relay.key_response(rng, requestor.anonymity_public(), requestor_ip);

  crypto::RsaPublicKey claimed_key;
  net::NodeIndex claimed_ip = net::kInvalidNode;
  std::uint64_t nonce = 0;
  {
    const auto plain =
        crypto::rsa_decrypt_bytes(requestor.anonymity_private(), response);
    if (!plain) return std::nullopt;
    try {
      util::ByteReader r(*plain);
      if (r.u8() != 0x01) return std::nullopt;
      claimed_key = crypto::RsaPublicKey::deserialize(r.blob());
      claimed_ip = r.u32();
      nonce = r.u64();
      if (!r.done()) return std::nullopt;
    } catch (const util::TruncatedInput&) {
      return std::nullopt;
    }
  }
  // The claimed transport address must be the one we contacted: a relay
  // cannot redirect the circuit elsewhere.
  if (claimed_ip != relay.ip()) return std::nullopt;

  // Step 3: AP_k(AP_p, IP_p, nonce) — provable only by the owner of AR_k.
  overlay.count_send(MessageKind::kKeyExchange);
  util::ByteWriter w;
  w.u8(0x02);
  w.blob(requestor.anonymity_public().serialize());
  w.u32(requestor_ip);
  w.u64(nonce);
  const util::Bytes verification =
      crypto::rsa_encrypt_bytes(rng, claimed_key, w.bytes());

  // Step 4: AP_p("confirmed", IP_k, nonce).
  overlay.count_send(MessageKind::kKeyExchange);
  const auto confirmation = relay.key_confirm(rng, verification);
  if (!confirmation) return std::nullopt;
  const auto plain =
      crypto::rsa_decrypt_bytes(requestor.anonymity_private(), *confirmation);
  if (!plain) return std::nullopt;
  try {
    util::ByteReader r(*plain);
    if (r.u8() != 0x03) return std::nullopt;
    const net::NodeIndex confirmed_ip = r.u32();
    const std::uint64_t confirmed_nonce = r.u64();
    if (!r.done() || confirmed_ip != relay.ip() || confirmed_nonce != nonce) {
      return std::nullopt;
    }
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
  return RelayInfo{relay.ip(), claimed_key};
}

}  // namespace hirep::onion
