// Onion construction and peeling (paper §3.3).
//
// An onion is a reply path *to its owner P*, built by P itself:
//
//   ( ( ( ( (fakeonion) AP_p ) IP_p ) AP_1 ) IP_1 ... AP_k ) IP_k, sq ) SR_p
//
// i.e. reading outside-in: the outermost layer is encrypted to the entry
// relay K and names K's address in clear so a holder knows where to send;
// each relay peels one layer with its AR and learns only the next hop; the
// innermost layer is encrypted to P itself and contains the fake-onion
// padding, so even the last relay cannot tell that its successor is the
// destination — every layer has an identical format.
//
// `sq` is a non-decreasing sequence number (age / anti-replay) and the whole
// onion is signed with the owner's SR so holders can authenticate it against
// the owner's nodeId (= SHA1(SP)).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/identity.hpp"
#include "onion/relay.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace hirep::onion {

struct Onion {
  net::NodeIndex entry = net::kInvalidNode;  ///< IP_k — first hop
  util::Bytes blob;                          ///< outermost encrypted layer
  std::uint64_t sq = 0;                      ///< freshness sequence number
  crypto::RsaPublicKey owner_sig_key;        ///< SP_p (public anyway)
  util::Bytes signature;                     ///< SR_p over (entry, blob, sq)

  /// Number of relays (hops before the owner); for accounting/tests.
  std::uint32_t relay_count = 0;

  util::Bytes signed_body() const;

  util::Bytes serialize() const;
  static std::optional<Onion> deserialize(std::span<const std::uint8_t> data);
};

/// Builds an onion owned by `owner` (at owner_ip).  `relays` is ordered
/// from the hop *adjacent to the owner* (relay 1) outward to the entry
/// relay K; each must hold a verified anonymity key.  `sq` must not
/// decrease across onions from the same owner.
Onion build_onion(util::Rng& rng, const crypto::Identity& owner,
                  net::NodeIndex owner_ip, const std::vector<RelayInfo>& relays,
                  std::uint64_t sq);

/// Same, but the terminal layer carries `terminal_payload` instead of
/// freshly drawn fake-onion padding.  The paper's protocol always pads
/// (the payload is indistinguishable random bytes); this overload lets
/// tests assert end-to-end payload identity through a full peel chain.
Onion build_onion(util::Rng& rng, const crypto::Identity& owner,
                  net::NodeIndex owner_ip, const std::vector<RelayInfo>& relays,
                  std::uint64_t sq, util::Bytes terminal_payload);

/// Verifies the owner signature on an onion.
bool verify_onion(const Onion& onion);

/// Result of peeling one layer with a relay's anonymity private key.
struct Peeled {
  net::NodeIndex next = net::kInvalidNode;  ///< forward the rest to this IP
  util::Bytes inner;                        ///< remaining onion body
  bool terminal = false;  ///< true when the *peeler* is the destination
};

/// Peels one layer; nullopt when the blob is not addressed to this key or
/// is malformed.  A terminal peel means the caller is the onion's owner and
/// `inner` is the fake-onion padding.
std::optional<Peeled> peel(const util::Bytes& blob,
                           const crypto::RsaPrivateKey& anonymity_private);

/// Onion-age policy (§3.3: "sq is the non-decrease sequence number used to
/// indicate the age of the onion").  Many holders legitimately keep onions
/// of different ages for the same owner, so freshness cannot be enforced
/// globally; instead the owner advances a *revocation floor* (periodic
/// refresh, key rotation, suspected capture) and every onion older than
/// the floor is rejected network-wide.  The newest sq seen is tracked for
/// introspection and for holders that want to keep only the freshest.
///
/// State is hash-map keyed by owner (O(1) at 100k owners) and guarded by an
/// internal mutex so engine lanes can accept concurrently.
class SequenceGuard {
 public:
  /// True iff sq is at or above the owner's revocation floor.  Records the
  /// newest sq seen either way.
  bool accept(const crypto::NodeId& owner, std::uint64_t sq);

  /// Owner-initiated invalidation: onions with sq < floor become
  /// unroutable.  Floors only move forward.
  void revoke_before(const crypto::NodeId& owner, std::uint64_t floor);

  std::optional<std::uint64_t> newest(const crypto::NodeId& owner) const;
  std::uint64_t floor_of(const crypto::NodeId& owner) const;

 private:
  struct State {
    std::uint64_t newest = 0;
    std::uint64_t floor = 0;
  };
  /// Caller must hold mu_.
  State& state_of(const crypto::NodeId& owner);
  mutable std::mutex mu_;
  std::unordered_map<crypto::NodeId, State, crypto::NodeIdHash> states_;
};

}  // namespace hirep::onion
