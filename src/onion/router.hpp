// Onion routing over the simulated overlay: carries a payload through every
// relay of an onion, peeling at each hop, with full traffic accounting and
// (optionally) queueing-model timing.  The router holds the registry of
// node identities — the simulator's stand-in for "each relay process owns
// its private key".
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "check/invariants.hpp"
#include "crypto/identity.hpp"
#include "net/overlay.hpp"
#include "onion/onion.hpp"

namespace hirep::onion {

struct RouteResult {
  bool delivered = false;
  net::NodeIndex destination = net::kInvalidNode;
  std::uint32_t hops = 0;        ///< messages sent (relays + final hop)
  double completion_ms = 0.0;    ///< timed mode only
  util::Bytes payload;           ///< what the destination received
};

class Router {
 public:
  /// Resolves an overlay index to the identity living at that node
  /// (nullptr = no such node).  A function, not a container pointer, so
  /// open-membership systems with growing identity stores work unchanged.
  using IdentityResolver =
      std::function<const crypto::Identity*(net::NodeIndex)>;

  Router(net::Overlay* overlay, IdentityResolver resolver);

  /// Convenience for the common fixed-population case.
  Router(net::Overlay* overlay, const std::vector<crypto::Identity>* identities);

  /// Sends `payload` along `onion`, starting from `sender_ip`.
  /// Counts one message per hop under `kind`.  Verifies the onion
  /// signature first and each relay enforces the sq guard; returns
  /// delivered=false on any failure (bad signature, undecryptable layer,
  /// stale sq).
  RouteResult route(net::NodeIndex sender_ip, const Onion& onion,
                    const util::Bytes& payload, net::MessageKind kind);

  /// Timed variant: messages traverse the queueing model; completion_ms is
  /// when the destination finishes handling the payload, having departed
  /// `depart_ms`.
  RouteResult route_timed(double depart_ms, net::NodeIndex sender_ip,
                          const Onion& onion, const util::Bytes& payload,
                          net::MessageKind kind);

  /// Enumerates the hop-by-hop node path of `onion` (entry relay first,
  /// destination last) by verifying the signature, enforcing the sq guard,
  /// and peeling every layer — without transmitting anything.  This is the
  /// seam the typed transport rides on: the transport carries the payload
  /// along the returned path under its own delivery policy.  nullopt on bad
  /// signature, stale sq, or an undecryptable/over-deep layer structure;
  /// the sq is consumed exactly as a routed send would consume it.
  std::optional<std::vector<net::NodeIndex>> peel_path(const Onion& onion);

  /// The anti-replay state shared by all relays in this simulation.
  SequenceGuard& sequence_guard() noexcept { return guard_; }

  /// Issuer-side §3.3 invariant wiring: owners report each onion they issue
  /// through their system's router; `sq` must never decrease per owner.
  /// The tracker is per-router (= per-system) because independently seeded
  /// systems can hold colliding identities.
  void note_issued(const crypto::NodeId& owner, std::uint64_t sq);

 private:
  RouteResult route_impl(std::optional<double> depart_ms,
                         net::NodeIndex sender_ip, const Onion& onion,
                         const util::Bytes& payload, net::MessageKind kind);

  net::Overlay* overlay_;
  IdentityResolver resolver_;
  SequenceGuard guard_;
  check::MonotoneSequence issued_sq_{"onion.sq.issuer_monotone"};
};

/// Picks `count` distinct relay nodes uniformly from [0, n), excluding
/// `owner` (a peer does not relay through itself).
std::vector<net::NodeIndex> pick_relay_ips(util::Rng& rng, std::size_t n,
                                           std::size_t count,
                                           net::NodeIndex owner);

}  // namespace hirep::onion
