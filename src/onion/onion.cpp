#include "onion/onion.hpp"

#include <algorithm>

#include "crypto/verify_cache.hpp"
#include "obs/metrics.hpp"

namespace hirep::onion {

namespace {

// Layer plaintext layout: u8 tag || u32 next_ip || blob(inner).
// The terminal layer (decrypted by the owner) carries the fake onion.
constexpr std::uint8_t kTagRelayLayer = 0x11;
constexpr std::uint8_t kTagTerminalLayer = 0x12;
constexpr std::size_t kFakeOnionBytes = 24;

obs::Counter& obs_counter(const char* name) {
  return obs::Registry::global().counter(name);
}

}  // namespace

util::Bytes Onion::signed_body() const {
  util::ByteWriter w;
  w.u32(entry);
  w.u64(sq);
  w.u32(relay_count);  // structural metadata is authenticated too
  w.blob(blob);
  return w.take();
}

util::Bytes Onion::serialize() const {
  util::ByteWriter w;
  w.u32(entry);
  w.u64(sq);
  w.u32(relay_count);
  w.blob(blob);
  w.blob(owner_sig_key.serialize());
  w.blob(signature);
  return w.take();
}

std::optional<Onion> Onion::deserialize(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    Onion o;
    o.entry = r.u32();
    o.sq = r.u64();
    o.relay_count = r.u32();
    o.blob = r.blob();
    o.owner_sig_key = crypto::RsaPublicKey::deserialize(r.blob());
    o.signature = r.blob();
    if (!r.done()) return std::nullopt;
    return o;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

Onion build_onion(util::Rng& rng, const crypto::Identity& owner,
                  net::NodeIndex owner_ip, const std::vector<RelayInfo>& relays,
                  std::uint64_t sq) {
  // Protocol form: the terminal layer carries fake-onion padding.  Drawing
  // the padding before any encryption keeps the rng stream identical to
  // the pre-overload layout (golden values depend on draw order).
  util::Bytes fake(kFakeOnionBytes);
  for (auto& b : fake) b = static_cast<std::uint8_t>(rng());
  return build_onion(rng, owner, owner_ip, relays, sq, std::move(fake));
}

Onion build_onion(util::Rng& rng, const crypto::Identity& owner,
                  net::NodeIndex owner_ip, const std::vector<RelayInfo>& relays,
                  std::uint64_t sq, util::Bytes terminal_payload) {
  // Innermost: terminal layer to the owner.
  util::ByteWriter terminal;
  terminal.u8(kTagTerminalLayer);
  terminal.u32(owner_ip);
  terminal.blob(terminal_payload);
  util::Bytes current =
      crypto::rsa_encrypt_bytes(rng, owner.anonymity_public(), terminal.bytes());
  net::NodeIndex next_ip = owner_ip;

  // Wrap outward: relay 1 (adjacent to owner) first, entry relay last.
  for (const RelayInfo& relay : relays) {
    util::ByteWriter layer;
    layer.u8(kTagRelayLayer);
    layer.u32(next_ip);
    layer.blob(current);
    current = crypto::rsa_encrypt_bytes(rng, relay.anonymity_key, layer.bytes());
    next_ip = relay.ip;
  }

  Onion onion;
  onion.entry = next_ip;  // owner itself when relays is empty
  onion.blob = std::move(current);
  onion.sq = sq;
  onion.owner_sig_key = owner.signature_public();
  onion.relay_count = static_cast<std::uint32_t>(relays.size());
  onion.signature = owner.sign(onion.signed_body());
  if constexpr (obs::kEnabled) {
    static obs::Counter& built = obs_counter("onion.built");
    static obs::Counter& layers = obs_counter("onion.layers_built");
    built.add();
    layers.add(relays.size() + 1);  // relay layers + terminal layer
  }
  return onion;
}

bool verify_onion(const Onion& onion) {
  return crypto::verify_cached(onion.owner_sig_key, onion.signed_body(),
                               onion.signature);
}

std::optional<Peeled> peel(const util::Bytes& blob,
                           const crypto::RsaPrivateKey& anonymity_private) {
  const auto result = [&]() -> std::optional<Peeled> {
    const auto plain = crypto::rsa_decrypt_bytes(anonymity_private, blob);
    if (!plain) return std::nullopt;
    try {
      util::ByteReader r(*plain);
      const std::uint8_t tag = r.u8();
      if (tag != kTagRelayLayer && tag != kTagTerminalLayer) {
        return std::nullopt;
      }
      Peeled out;
      out.next = r.u32();
      out.inner = r.blob();
      out.terminal = (tag == kTagTerminalLayer);
      if (!r.done()) return std::nullopt;
      return out;
    } catch (const util::TruncatedInput&) {
      return std::nullopt;
    }
  }();
  if constexpr (obs::kEnabled) {
    static obs::Counter& peeled = obs_counter("onion.layers_peeled");
    static obs::Counter& failures = obs_counter("onion.peel.failures");
    if (result) {
      peeled.add();
    } else {
      failures.add();
    }
  }
  return result;
}

SequenceGuard::State& SequenceGuard::state_of(const crypto::NodeId& owner) {
  return states_[owner];  // value-initialized on first sight
}

bool SequenceGuard::accept(const crypto::NodeId& owner, std::uint64_t sq) {
  std::lock_guard<std::mutex> lock(mu_);
  State& s = state_of(owner);
  if constexpr (obs::kEnabled) {
    static obs::Counter& refreshes = obs_counter("onion.sq.refreshes");
    static obs::Counter& rejected = obs_counter("onion.sq.rejected");
    if (sq > s.newest) refreshes.add();
    if (sq < s.floor) rejected.add();
  }
  s.newest = std::max(s.newest, sq);
  return sq >= s.floor;
}

void SequenceGuard::revoke_before(const crypto::NodeId& owner,
                                  std::uint64_t floor) {
  std::lock_guard<std::mutex> lock(mu_);
  State& s = state_of(owner);
  s.floor = std::max(s.floor, floor);
}

std::optional<std::uint64_t> SequenceGuard::newest(
    const crypto::NodeId& owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(owner);
  if (it == states_.end()) return std::nullopt;
  return it->second.newest;
}

std::uint64_t SequenceGuard::floor_of(const crypto::NodeId& owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(owner);
  if (it == states_.end()) return 0;
  return it->second.floor;
}

}  // namespace hirep::onion
