#include "onion/router.hpp"

#include "obs/metrics.hpp"

namespace hirep::onion {

Router::Router(net::Overlay* overlay, IdentityResolver resolver)
    : overlay_(overlay), resolver_(std::move(resolver)) {}

Router::Router(net::Overlay* overlay,
               const std::vector<crypto::Identity>* identities)
    : Router(overlay, [identities](net::NodeIndex v) -> const crypto::Identity* {
        return v < identities->size() ? &(*identities)[v] : nullptr;
      }) {}

RouteResult Router::route(net::NodeIndex sender_ip, const Onion& onion,
                          const util::Bytes& payload, net::MessageKind kind) {
  return route_impl(std::nullopt, sender_ip, onion, payload, kind);
}

RouteResult Router::route_timed(double depart_ms, net::NodeIndex sender_ip,
                                const Onion& onion, const util::Bytes& payload,
                                net::MessageKind kind) {
  return route_impl(depart_ms, sender_ip, onion, payload, kind);
}

void Router::note_issued(const crypto::NodeId& owner, std::uint64_t sq) {
  if constexpr (obs::kEnabled) {
    static obs::Counter& issued =
        obs::Registry::global().counter("onion.sq.issued");
    issued.add();
  }
  if constexpr (check::kEnabled) {
    issued_sq_.note(crypto::NodeIdHash{}(owner), 0, sq);
  }
}

std::optional<std::vector<net::NodeIndex>> Router::peel_path(
    const Onion& onion) {
  if (!verify_onion(onion)) return std::nullopt;
  if (!guard_.accept(crypto::NodeId::of_key(onion.owner_sig_key), onion.sq)) {
    return std::nullopt;
  }
  std::vector<net::NodeIndex> path;
  path.reserve(onion.relay_count + 1);
  net::NodeIndex at = onion.entry;
  util::Bytes blob = onion.blob;
  for (std::uint32_t step = 0; step <= onion.relay_count + 1; ++step) {
    const crypto::Identity* holder = resolver_(at);
    if (holder == nullptr) return std::nullopt;
    path.push_back(at);
    const auto peeled = peel(blob, holder->anonymity_private());
    if (!peeled) return std::nullopt;
    if (peeled->terminal) return path;
    at = peeled->next;
    blob = peeled->inner;
  }
  return std::nullopt;  // layer structure deeper than declared: reject
}

RouteResult Router::route_impl(std::optional<double> depart_ms,
                               net::NodeIndex sender_ip, const Onion& onion,
                               const util::Bytes& payload,
                               net::MessageKind kind) {
  RouteResult result;
  if (!verify_onion(onion)) return result;
  if (!guard_.accept(crypto::NodeId::of_key(onion.owner_sig_key), onion.sq)) {
    return result;
  }

  net::NodeIndex from = sender_ip;
  net::NodeIndex at = onion.entry;
  util::Bytes blob = onion.blob;
  double clock = depart_ms.value_or(0.0);

  // Hop 0: sender transmits (onion, payload) to the entry relay.  Each
  // relay peels one layer and forwards the rest.  Loop is bounded by the
  // onion's layer count plus one terminal peel.
  for (std::uint32_t step = 0; step <= onion.relay_count + 1; ++step) {
    const crypto::Identity* holder = resolver_(at);
    if (holder == nullptr) return result;
    if (depart_ms) {
      clock = overlay_->timed_send(clock, from, at, kind);
    } else {
      overlay_->count_send(kind);
    }
    ++result.hops;

    const auto peeled = peel(blob, holder->anonymity_private());
    if (!peeled) return result;  // not addressed to this node / corrupted
    if (peeled->terminal) {
      result.delivered = true;
      result.destination = at;
      result.completion_ms = clock;
      result.payload = payload;
      return result;
    }
    from = at;
    at = peeled->next;
    blob = peeled->inner;
  }
  return result;  // layer structure deeper than declared: reject
}

std::vector<net::NodeIndex> pick_relay_ips(util::Rng& rng, std::size_t n,
                                           std::size_t count,
                                           net::NodeIndex owner) {
  std::vector<net::NodeIndex> out;
  if (count >= n) count = n > 1 ? n - 1 : 0;
  out.reserve(count);
  while (out.size() < count) {
    const auto candidate = static_cast<net::NodeIndex>(rng.below(n));
    if (candidate == owner) continue;
    bool duplicate = false;
    for (net::NodeIndex existing : out) {
      if (existing == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(candidate);
  }
  return out;
}

}  // namespace hirep::onion
