// Anonymity-key fetch handshake (paper §3.3, Figure 3).
//
// When peer P picks node K as an onion relay (P knows K's IP), the
// anonymity public key AP_k is fetched and *verified* with a four-message
// exchange:
//
//   1. P -> K : (R_o, AP_p, IP_p)                    routing-relay request
//   2. K -> P : AP_p( AP_k, IP_k, nonce )            key response
//   3. P -> K : AP_k( AP_p, IP_p, nonce )            key verification
//   4. K -> P : AP_p( "confirmed", IP_k, nonce )     confirmation
//
// If step 4 never verifies, AP_k is invalid (e.g. a man in the middle
// substituted its own key but cannot decrypt step 3 to learn the nonce).
// The nonce also blocks replays of old confirmations.
#pragma once

#include <optional>

#include "crypto/identity.hpp"
#include "net/overlay.hpp"
#include "util/rng.hpp"

namespace hirep::onion {

/// A verified relay endpoint: transport address + anonymity public key.
struct RelayInfo {
  net::NodeIndex ip = net::kInvalidNode;
  crypto::RsaPublicKey anonymity_key;

  bool operator==(const RelayInfo&) const = default;
};

/// Interface the handshake uses to talk to the candidate relay.  In the
/// simulator the other side is an Identity held in the same process; the
/// indirection exists so tests can interpose an attacker.
class RelayEndpoint {
 public:
  virtual ~RelayEndpoint() = default;
  virtual net::NodeIndex ip() const = 0;
  /// Step 1 -> step 2: returns AP_p-encrypted (AP_k, IP_k, nonce).
  virtual util::Bytes key_response(util::Rng& rng,
                                   const crypto::RsaPublicKey& requestor_ap,
                                   net::NodeIndex requestor_ip) = 0;
  /// Step 3 -> step 4: returns AP_p-encrypted ("confirmed", IP_k, nonce),
  /// or nullopt when the verification message cannot be decrypted.
  virtual std::optional<util::Bytes> key_confirm(util::Rng& rng,
                                                 const util::Bytes& verification) = 0;
};

/// An honest relay endpoint wrapping a node's identity.
class HonestRelay final : public RelayEndpoint {
 public:
  HonestRelay(net::NodeIndex ip, const crypto::Identity* identity)
      : ip_(ip), identity_(identity) {}

  net::NodeIndex ip() const override { return ip_; }
  util::Bytes key_response(util::Rng& rng,
                           const crypto::RsaPublicKey& requestor_ap,
                           net::NodeIndex requestor_ip) override;
  std::optional<util::Bytes> key_confirm(util::Rng& rng,
                                         const util::Bytes& verification) override;

 private:
  net::NodeIndex ip_;
  const crypto::Identity* identity_;
  std::uint64_t pending_nonce_ = 0;
  bool have_pending_ = false;
};

/// Runs the full four-message handshake between `requestor` (at
/// requestor_ip) and `relay`.  Counts 4 kKeyExchange messages on the
/// overlay.  Returns the verified RelayInfo, or nullopt when any step fails
/// (wrong nonce, undecryptable message, key mismatch).
std::optional<RelayInfo> fetch_anonymity_key(net::Overlay& overlay,
                                             util::Rng& rng,
                                             const crypto::Identity& requestor,
                                             net::NodeIndex requestor_ip,
                                             RelayEndpoint& relay);

}  // namespace hirep::onion
