// Ground-truth world model behind every experiment (paper §5.2):
//
//  * each node is randomly trustable (true trust 1) or untrustable (0);
//  * nodes with bandwidth > 64 kbit/s may act as reputation agents;
//  * agents are good or poor evaluators: a good agent rates trustable
//    peers U[0.6, 1] and untrustable peers U[0, 0.4]; a poor (or
//    malicious) evaluator inverts that;
//  * a transaction with a trustable provider succeeds (outcome 1), with an
//    untrustable provider fails (outcome 0).
//
// Voter honesty in the polling baseline uses the same good/poor split.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace hirep::trust {

/// Adversarial evaluation/reporting modes the strategy engine
/// (sim::Adversary) assigns to individual nodes.  kDefault is the seeded
/// world behavior — honesty follows the poor-evaluator flag — and is what
/// every node has unless an engine recruits it, so runs without an
/// adversary are bit-identical to the pre-engine world.
enum class Behavior : std::uint8_t {
  kDefault = 0,  ///< honesty follows the seeded poor-evaluator flag
  kBadmouth,     ///< collusion ring: min-rates targets, max-rates members
  kFront,        ///< front peer: honest service, dishonest evaluation/reports
};

struct WorldParams {
  std::size_t nodes = 1000;
  double trustable_ratio = 0.5;    ///< fraction of nodes with true trust 1
  double agent_capable_ratio = 0.4;///< fraction with bandwidth > 64 kbit/s
  /// Fraction of nodes that evaluate wrongly (malicious / "poor
  /// performance" evaluators).  Applies to every node in its voter role
  /// and, restricted to agent-capable nodes, to the agent role — Table 1's
  /// "poor performance agents 10%" and Figure 7's attacker-ratio sweep.
  double malicious_ratio = 0.10;
  double good_rating_lo = 0.6;     ///< "Good rating" scope (Table 1): 0.6–1
  double good_rating_hi = 1.0;
  double bad_rating_lo = 0.0;      ///< "Bad rating" scope (Table 1): 0–0.4
  double bad_rating_hi = 0.4;
};

class GroundTruth {
 public:
  GroundTruth(util::Rng& rng, const WorldParams& params);

  std::size_t node_count() const noexcept { return trustable_.size(); }
  const WorldParams& params() const noexcept { return params_; }

  bool trustable(net::NodeIndex v) const { return trustable_.at(v); }
  /// Service quality the node *currently* delivers: the seeded trustable
  /// flag unless the adversary engine forces a phase (on-off oscillators
  /// play nice until trusted, then defect; front peers always serve well).
  bool effective_trustable(net::NodeIndex v) const {
    const std::int8_t forced = service_override_.at(v);
    return forced < 0 ? trustable_.at(v) : forced != 0;
  }
  /// True trust value: 1.0 or 0.0.  Tracks the effective behavior, so MSE
  /// accounting measures an oscillator against the phase it is actually in.
  double true_trust(net::NodeIndex v) const {
    return effective_trustable(v) ? 1.0 : 0.0;
  }

  double bandwidth_kbps(net::NodeIndex v) const { return bandwidth_.at(v); }
  /// Paper rule: any peer with bandwidth greater than 64k can claim itself
  /// a reputation agent.
  bool agent_capable(net::NodeIndex v) const { return bandwidth_.at(v) > 64.0; }
  bool poor_evaluator(net::NodeIndex v) const { return poor_.at(v); }

  std::vector<net::NodeIndex> agent_capable_nodes() const;

  /// An evaluator's rating of `subject`: good evaluators rate consistently
  /// with the truth, poor evaluators invert (both within the Table-1
  /// rating scopes).
  double evaluate(net::NodeIndex evaluator, net::NodeIndex subject,
                  util::Rng& rng) const;

  /// Transaction outcome with `provider` (1 success / 0 failure).
  double transaction_outcome(net::NodeIndex provider) const {
    return true_trust(provider);
  }

  /// The outcome `reporter` *claims* in a §3.6 transaction report about
  /// `subject`, given the outcome it actually observed.  Honest reporters
  /// (and seeded poor evaluators, whose dishonesty lives in the rating
  /// path) forward the observation verbatim; engine-recruited behaviors
  /// falsify: a ring member files minimum-weight reports against campaign
  /// targets and ballot-stuffs fellow members, a front peer inverts every
  /// report.  Deterministic (no RNG draw), so runs without recruited nodes
  /// are bit-identical.
  double reported_outcome(net::NodeIndex reporter, net::NodeIndex subject,
                          double actual) const;

  // ---- adversary engine hooks (sim::Adversary) -------------------------
  Behavior behavior(net::NodeIndex v) const {
    return static_cast<Behavior>(behavior_.at(v));
  }
  void set_behavior(net::NodeIndex v, Behavior b) {
    behavior_.at(v) = static_cast<std::uint8_t>(b);
  }
  bool ring_member(net::NodeIndex v) const { return ring_member_.at(v) != 0; }
  bool ring_target(net::NodeIndex v) const { return ring_target_.at(v) != 0; }
  void set_ring_member(net::NodeIndex v, bool member) {
    ring_member_.at(v) = member ? 1 : 0;
  }
  void set_ring_target(net::NodeIndex v, bool target) {
    ring_target_.at(v) = target ? 1 : 0;
  }
  /// Forces the service phase of v (true = deliver good service) until
  /// clear_service_override; drives on-off oscillators and front peers.
  void force_service(net::NodeIndex v, bool good) {
    service_override_.at(v) = good ? 1 : 0;
  }
  void clear_service_override(net::NodeIndex v) {
    service_override_.at(v) = -1;
  }
  bool service_forced(net::NodeIndex v) const {
    return service_override_.at(v) >= 0;
  }

  /// Flips `count` additional good evaluators to malicious, chosen
  /// uniformly over all nodes.
  void corrupt_evaluators(util::Rng& rng, std::size_t count);
  /// Resets the malicious/honest split to exactly `ratio` of all nodes
  /// (used by Figure 7's attacker-ratio sweep).
  void set_malicious_ratio(util::Rng& rng, double ratio);

  /// Flips one node's evaluator honesty (targeted attacks / Sybil arms).
  void set_malicious(net::NodeIndex v, bool malicious) {
    poor_.at(v) = malicious;
  }

  /// Open membership: appends a freshly sampled node (trustability,
  /// bandwidth, honesty all drawn from the world parameters).
  net::NodeIndex add_node(util::Rng& rng);

  std::size_t poor_evaluator_count() const;

 private:
  WorldParams params_;
  std::vector<bool> trustable_;
  std::vector<double> bandwidth_;
  std::vector<bool> poor_;
  // Adversary-engine per-node state; all-default (0 / -1) unless an
  // installed sim::Adversary recruits nodes, so the seeded world behaves
  // exactly as before the engine existed.
  std::vector<std::uint8_t> behavior_;
  std::vector<std::uint8_t> ring_member_;
  std::vector<std::uint8_t> ring_target_;
  std::vector<std::int8_t> service_override_;  ///< -1 none, 0 fail, 1 succeed
};

}  // namespace hirep::trust
