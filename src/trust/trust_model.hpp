// Trust-value computation models.
//
// The paper deliberately leaves the computation model open ("a reputation
// agent computes the trust value of each node using its own trust value
// computation model", §3.2) and cites the e-commerce / P2P literature for
// candidates.  We provide the standard family behind one interface so any
// agent — hiREP trusted agent, TrustMe THA, or local voter — can plug in:
//
//   * AverageModel — running mean of observed outcomes
//   * EwmaModel    — exponentially weighted moving average (the same
//                    recurrence the paper uses for agent expertise)
//   * BetaModel    — Bayesian Beta-reputation posterior mean
//
// EigenTrust (eigentrust.hpp) is the classic *global* model and has its own
// matrix-shaped API.
#pragma once

#include <functional>
#include <memory>
#include <string>

namespace hirep::trust {

/// Sequential estimator of one subject's trustworthiness from outcome
/// observations in [0,1].
class TrustModel {
 public:
  virtual ~TrustModel() = default;

  /// Records one observed transaction outcome (1 = good, 0 = bad; values
  /// between are partial satisfaction).  Out-of-range input is clamped.
  virtual void record(double outcome) = 0;

  /// Current trust estimate in [0,1].  Models return the neutral prior 0.5
  /// before any observation.
  virtual double value() const = 0;

  virtual std::size_t observations() const = 0;
  virtual std::unique_ptr<TrustModel> clone() const = 0;
  virtual std::string name() const = 0;
};

using TrustModelFactory = std::function<std::unique_ptr<TrustModel>()>;

TrustModelFactory average_model_factory();
TrustModelFactory ewma_model_factory(double alpha = 0.3);
TrustModelFactory beta_model_factory(double prior_alpha = 1.0,
                                     double prior_beta = 1.0);

/// Builds a factory by name: "average", "ewma", "beta".  Throws
/// std::invalid_argument on unknown names.
TrustModelFactory model_factory_by_name(const std::string& name);

}  // namespace hirep::trust
