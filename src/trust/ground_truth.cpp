#include "trust/ground_truth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hirep::trust {

GroundTruth::GroundTruth(util::Rng& rng, const WorldParams& params)
    : params_(params),
      trustable_(params.nodes),
      bandwidth_(params.nodes),
      poor_(params.nodes, false),
      behavior_(params.nodes, 0),
      ring_member_(params.nodes, 0),
      ring_target_(params.nodes, 0),
      service_override_(params.nodes, -1) {
  if (params.nodes == 0) throw std::invalid_argument("empty world");
  for (std::size_t v = 0; v < params.nodes; ++v) {
    trustable_[v] = rng.chance(params.trustable_ratio);
    // Bimodal bandwidth: agent-capable nodes get broadband (128–10000
    // kbit/s, log-uniform-ish), the rest are below the 64k threshold.
    if (rng.chance(params.agent_capable_ratio)) {
      bandwidth_[v] = 128.0 * std::pow(78.0, rng.uniform());  // 128..~10000
    } else {
      bandwidth_[v] = rng.uniform(16.0, 64.0);
    }
  }
  // Malicious evaluators are a fraction of the whole population (they are
  // wrong in both their voter role and, if capable, their agent role).
  const auto poor_count = static_cast<std::size_t>(
      params.malicious_ratio * static_cast<double>(params.nodes) + 0.5);
  const auto chosen = rng.sample_indices(params.nodes, poor_count);
  for (std::size_t idx : chosen) poor_[idx] = true;
}

std::vector<net::NodeIndex> GroundTruth::agent_capable_nodes() const {
  std::vector<net::NodeIndex> out;
  for (std::size_t v = 0; v < bandwidth_.size(); ++v) {
    if (agent_capable(static_cast<net::NodeIndex>(v))) {
      out.push_back(static_cast<net::NodeIndex>(v));
    }
  }
  return out;
}

double GroundTruth::evaluate(net::NodeIndex evaluator, net::NodeIndex subject,
                             util::Rng& rng) const {
  // Deception is judged against the subject's *effective* service phase:
  // honest evaluators rate an oscillator in its play-nice phase as good,
  // which is exactly the opening the on-off strategy exploits.
  const bool subject_good = effective_trustable(subject);
  bool report_high;
  switch (behavior(evaluator)) {
    case Behavior::kBadmouth:
      // Collusion ring: minimum weight for campaign targets, ballot
      // stuffing for fellow members, honest (stealthy) otherwise.
      if (ring_target_.at(subject) != 0) {
        report_high = false;
      } else if (ring_member_.at(subject) != 0) {
        report_high = true;
      } else {
        report_high =
            poor_evaluator(evaluator) ? !subject_good : subject_good;
      }
      break;
    case Behavior::kFront:
      report_high = !subject_good;
      break;
    case Behavior::kDefault:
    default:
      // A good evaluator reports consistently with the truth; a
      // poor/malicious one inverts. Both use the Table-1 rating scopes.
      report_high =
          poor_evaluator(evaluator) ? !subject_good : subject_good;
      break;
  }
  // Every branch draws exactly one uniform, so recruiting a node never
  // shifts any other caller's RNG stream.
  return report_high
             ? rng.uniform(params_.good_rating_lo, params_.good_rating_hi)
             : rng.uniform(params_.bad_rating_lo, params_.bad_rating_hi);
}

double GroundTruth::reported_outcome(net::NodeIndex reporter,
                                     net::NodeIndex subject,
                                     double actual) const {
  switch (behavior(reporter)) {
    case Behavior::kBadmouth:
      if (ring_target_.at(subject) != 0) return 0.0;
      if (ring_member_.at(subject) != 0) return 1.0;
      return actual;
    case Behavior::kFront:
      return actual >= 0.5 ? 0.0 : 1.0;
    case Behavior::kDefault:
    default:
      return actual;
  }
}

void GroundTruth::corrupt_evaluators(util::Rng& rng, std::size_t count) {
  std::vector<net::NodeIndex> honest;
  for (std::size_t v = 0; v < poor_.size(); ++v) {
    if (!poor_[v]) honest.push_back(static_cast<net::NodeIndex>(v));
  }
  count = std::min(count, honest.size());
  const auto chosen = rng.sample_indices(honest.size(), count);
  for (std::size_t idx : chosen) poor_[honest[idx]] = true;
}

void GroundTruth::set_malicious_ratio(util::Rng& rng, double ratio) {
  ratio = std::clamp(ratio, 0.0, 1.0);
  std::fill(poor_.begin(), poor_.end(), false);
  const auto poor_count = static_cast<std::size_t>(
      ratio * static_cast<double>(poor_.size()) + 0.5);
  const auto chosen = rng.sample_indices(poor_.size(), poor_count);
  for (std::size_t idx : chosen) poor_[idx] = true;
  params_.malicious_ratio = ratio;
}

net::NodeIndex GroundTruth::add_node(util::Rng& rng) {
  trustable_.push_back(rng.chance(params_.trustable_ratio));
  if (rng.chance(params_.agent_capable_ratio)) {
    bandwidth_.push_back(128.0 * std::pow(78.0, rng.uniform()));
  } else {
    bandwidth_.push_back(rng.uniform(16.0, 64.0));
  }
  poor_.push_back(rng.chance(params_.malicious_ratio));
  behavior_.push_back(0);
  ring_member_.push_back(0);
  ring_target_.push_back(0);
  service_override_.push_back(-1);
  params_.nodes = trustable_.size();
  return static_cast<net::NodeIndex>(trustable_.size() - 1);
}

std::size_t GroundTruth::poor_evaluator_count() const {
  return static_cast<std::size_t>(std::count(poor_.begin(), poor_.end(), true));
}

}  // namespace hirep::trust
