#include <algorithm>

#include "check/invariants.hpp"
#include "trust/trust_model.hpp"

namespace hirep::trust {

namespace {

class AverageModel final : public TrustModel {
 public:
  void record(double outcome) override {
    outcome = std::clamp(outcome, 0.0, 1.0);
    ++n_;
    mean_ += (outcome - mean_) / static_cast<double>(n_);
    if constexpr (check::kEnabled) {
      check::unit_interval("trust.average.bounds", mean_);
    }
  }

  double value() const override { return n_ ? mean_ : 0.5; }
  std::size_t observations() const override { return n_; }
  std::unique_ptr<TrustModel> clone() const override {
    return std::make_unique<AverageModel>(*this);
  }
  std::string name() const override { return "average"; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
};

}  // namespace

TrustModelFactory average_model_factory() {
  return [] { return std::make_unique<AverageModel>(); };
}

}  // namespace hirep::trust
