// EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW'03) — the classic
// global reputation model the paper's related-work section positions
// against.  Computes the stationary distribution of the normalized local
// trust matrix with pre-trusted-peer damping:
//
//     t_{k+1} = (1 - a) * C^T t_k + a * p
//
// Included as an alternative agent-side computation model for the
// ablation bench and as the structured-P2P comparator baseline.
#pragma once

#include <cstddef>
#include <vector>

namespace hirep::trust {

class EigenTrust {
 public:
  /// n peers; `pre_trusted` may be empty (then p is uniform).
  EigenTrust(std::size_t n, std::vector<std::size_t> pre_trusted = {});

  /// Accumulates local trust: peer i's satisfaction s with peer j
  /// (positive values only; negatives clamp to 0 per the original paper).
  void add_local_trust(std::size_t i, std::size_t j, double s);

  std::size_t size() const noexcept { return n_; }

  /// Runs power iteration until ||t_{k+1} - t_k||_1 < epsilon or max_iters.
  /// Returns the global trust vector (sums to 1 for non-degenerate input).
  std::vector<double> compute(double damping = 0.15, double epsilon = 1e-9,
                              std::size_t max_iters = 200) const;

  /// Iterations the last compute() needed (for benches).
  std::size_t last_iterations() const noexcept { return last_iterations_; }

 private:
  std::size_t n_;
  std::vector<double> local_;  // row-major n x n, un-normalized
  std::vector<std::size_t> pre_trusted_;
  mutable std::size_t last_iterations_ = 0;
};

}  // namespace hirep::trust
