#include "trust/eigentrust.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hirep::trust {

EigenTrust::EigenTrust(std::size_t n, std::vector<std::size_t> pre_trusted)
    : n_(n), local_(n * n, 0.0), pre_trusted_(std::move(pre_trusted)) {
  for (std::size_t p : pre_trusted_) {
    if (p >= n_) throw std::out_of_range("pre-trusted index out of range");
  }
}

void EigenTrust::add_local_trust(std::size_t i, std::size_t j, double s) {
  if (i >= n_ || j >= n_) throw std::out_of_range("peer index out of range");
  if (i == j) return;  // self-ratings are ignored
  local_[i * n_ + j] += std::max(s, 0.0);
}

std::vector<double> EigenTrust::compute(double damping, double epsilon,
                                        std::size_t max_iters) const {
  // p: pre-trusted distribution (uniform fallback).
  std::vector<double> p(n_, 0.0);
  if (pre_trusted_.empty()) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n_));
  } else {
    for (std::size_t i : pre_trusted_) {
      p[i] = 1.0 / static_cast<double>(pre_trusted_.size());
    }
  }

  // Row-normalize C; rows with no ratings fall back to p (the standard
  // EigenTrust fix for dangling peers).
  std::vector<double> c(local_);
  std::vector<bool> dangling(n_, false);
  for (std::size_t i = 0; i < n_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n_; ++j) row += c[i * n_ + j];
    if (row <= 0.0) {
      dangling[i] = true;
      continue;
    }
    for (std::size_t j = 0; j < n_; ++j) c[i * n_ + j] /= row;
  }

  std::vector<double> t(p);  // start from the pre-trusted distribution
  std::vector<double> next(n_);
  last_iterations_ = 0;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    ++last_iterations_;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      if (t[i] == 0.0) continue;
      if (dangling[i]) {
        for (std::size_t j = 0; j < n_; ++j) next[j] += t[i] * p[j];
      } else {
        const double ti = t[i];
        const double* row = &c[i * n_];
        for (std::size_t j = 0; j < n_; ++j) next[j] += ti * row[j];
      }
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      next[j] = (1.0 - damping) * next[j] + damping * p[j];
      delta += std::abs(next[j] - t[j]);
    }
    t.swap(next);
    if (delta < epsilon) break;
  }
  return t;
}

}  // namespace hirep::trust
