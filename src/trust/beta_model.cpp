#include <algorithm>
#include <stdexcept>

#include "check/invariants.hpp"
#include "trust/trust_model.hpp"

namespace hirep::trust {

namespace {

// Beta-reputation (Jøsang & Ismail): posterior mean of a Beta distribution
// whose pseudo-counts accumulate fractional successes/failures.
class BetaModel final : public TrustModel {
 public:
  BetaModel(double prior_alpha, double prior_beta)
      : alpha_(prior_alpha), beta_(prior_beta) {
    if (prior_alpha <= 0.0 || prior_beta <= 0.0) {
      throw std::invalid_argument("beta priors must be positive");
    }
  }

  void record(double outcome) override {
    outcome = std::clamp(outcome, 0.0, 1.0);
    alpha_ += outcome;
    beta_ += 1.0 - outcome;
    ++n_;
    if constexpr (check::kEnabled) {
      check::unit_interval("trust.beta.bounds", value());
    }
  }

  double value() const override { return alpha_ / (alpha_ + beta_); }
  std::size_t observations() const override { return n_; }
  std::unique_ptr<TrustModel> clone() const override {
    return std::make_unique<BetaModel>(*this);
  }
  std::string name() const override { return "beta"; }

 private:
  double alpha_;
  double beta_;
  std::size_t n_ = 0;
};

}  // namespace

TrustModelFactory beta_model_factory(double prior_alpha, double prior_beta) {
  return [prior_alpha, prior_beta] {
    return std::make_unique<BetaModel>(prior_alpha, prior_beta);
  };
}

}  // namespace hirep::trust
