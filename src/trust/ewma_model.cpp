#include <algorithm>
#include <stdexcept>

#include "check/invariants.hpp"
#include "trust/trust_model.hpp"

namespace hirep::trust {

namespace {

// v <- alpha * x + (1 - alpha) * v — the recurrence the paper uses for
// agent expertise (§3.4.3), applied here to subject trust.  The first
// observation replaces the neutral prior entirely rather than mixing with
// it, so the estimate is unbiased from the start.
class EwmaModel final : public TrustModel {
 public:
  explicit EwmaModel(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha >= 1.0) {
      throw std::invalid_argument("ewma alpha must be in (0,1)");
    }
  }

  void record(double outcome) override {
    outcome = std::clamp(outcome, 0.0, 1.0);
    value_ = n_ == 0 ? outcome : alpha_ * outcome + (1.0 - alpha_) * value_;
    ++n_;
    if constexpr (check::kEnabled) {
      check::unit_interval("trust.ewma.bounds", value_);
    }
  }

  double value() const override { return n_ ? value_ : 0.5; }
  std::size_t observations() const override { return n_; }
  std::unique_ptr<TrustModel> clone() const override {
    return std::make_unique<EwmaModel>(*this);
  }
  std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  double value_ = 0.5;
  std::size_t n_ = 0;
};

}  // namespace

TrustModelFactory ewma_model_factory(double alpha) {
  return [alpha] { return std::make_unique<EwmaModel>(alpha); };
}

}  // namespace hirep::trust
