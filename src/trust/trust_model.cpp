#include "trust/trust_model.hpp"

#include <stdexcept>

namespace hirep::trust {

TrustModelFactory model_factory_by_name(const std::string& name) {
  if (name == "average") return average_model_factory();
  if (name == "ewma") return ewma_model_factory();
  if (name == "beta") return beta_model_factory();
  throw std::invalid_argument("unknown trust model: " + name);
}

}  // namespace hirep::trust
