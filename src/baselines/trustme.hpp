// TrustMe baseline [Singh & Liu, P2P'03] as characterized in the paper's
// related-work section (§2): trust values are stored remotely at
// *trust-holding agents* (THAs) that the bootstrap server assigns randomly
// — not chosen by the peer — and the protocol broadcasts twice:
//
//   * a requestor broadcasts the trust query to the entire system; the
//     THAs of the candidate reply;
//   * after a transaction, the peer broadcasts the result to the entire
//     system so the partner's THAs can store it.
//
// Included to quantify the paper's qualitative claim that TrustMe is "not
// a hierarchical system" and keeps flooding in the loop.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/flood.hpp"
#include "net/overlay.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "trust/ground_truth.hpp"
#include "trust/trust_model.hpp"
#include "util/rng.hpp"

namespace hirep::baselines {

struct TrustMeOptions {
  std::size_t nodes = 1000;
  double average_degree = 4.0;
  std::uint32_t ttl = 4;
  std::size_t thas_per_peer = 4;  ///< THAs assigned at bootstrap
  std::string model = "ewma";
  trust::WorldParams world;
  net::LatencyParams latency;
  net::DeliveryConfig delivery;
  std::uint64_t seed = 1;
};

class TrustMeSystem {
 public:
  explicit TrustMeSystem(TrustMeOptions options);

  net::Overlay& overlay() noexcept { return overlay_; }
  net::Transport& transport() noexcept { return transport_; }
  trust::GroundTruth& truth() noexcept { return truth_; }
  const TrustMeOptions& options() const noexcept { return options_; }
  const std::vector<net::NodeIndex>& thas_of(net::NodeIndex peer) const;

  struct TransactionRecord {
    net::NodeIndex requestor = net::kInvalidNode;
    net::NodeIndex provider = net::kInvalidNode;
    double estimate = 0.5;
    double truth_value = 0.0;
    std::size_t responses = 0;
    std::uint64_t trust_messages = 0;
  };
  TransactionRecord run_transaction();
  TransactionRecord run_transaction(net::NodeIndex requestor,
                                    net::NodeIndex provider);

  /// Whitewash surface: drop every THA-stored model about v — a shed
  /// identity's history disappears from its trust-holding agents.
  void reset_reputation(net::NodeIndex v);

 private:
  /// What a THA answers about its subject: its stored model value, or its
  /// own (possibly malicious) evaluation before any report arrived.
  double tha_answer(net::NodeIndex tha, net::NodeIndex subject);

  TrustMeOptions options_;
  util::Rng rng_;
  trust::GroundTruth truth_;
  net::Overlay overlay_;
  net::Transport transport_;
  std::vector<std::vector<net::NodeIndex>> thas_;  // per peer
  // THA-side stores: (tha, subject) -> model
  std::map<std::pair<net::NodeIndex, net::NodeIndex>,
           std::unique_ptr<trust::TrustModel>>
      stores_;
  trust::TrustModelFactory model_factory_;
};

}  // namespace hirep::baselines
