// Centralized baseline — Gupta et al. [NOSSDAV'03]: a dedicated
// *reputation computation agent* (RCA) stores every peer's reputation.
// Queries and reports are point-to-point with the RCA, so per-transaction
// traffic is O(1) — but the RCA is a traffic bottleneck (every message in
// the system funnels through one node's serial queue) and a single point
// of failure, which is exactly the §3.1 argument for hiREP's hierarchy.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "net/overlay.hpp"
#include "net/topology.hpp"
#include "trust/ground_truth.hpp"
#include "trust/trust_model.hpp"
#include "util/rng.hpp"

namespace hirep::baselines {

struct RcaOptions {
  std::size_t nodes = 1000;
  double average_degree = 4.0;
  net::NodeIndex rca_node = 0;  ///< the dedicated server's overlay seat
  std::string model = "ewma";
  trust::WorldParams world;
  net::LatencyParams latency;
  std::uint64_t seed = 1;
};

class RcaSystem {
 public:
  explicit RcaSystem(RcaOptions options);

  net::Overlay& overlay() noexcept { return overlay_; }
  trust::GroundTruth& truth() noexcept { return truth_; }
  const RcaOptions& options() const noexcept { return options_; }

  bool rca_online() const noexcept { return online_; }
  /// The single point of failure, made explicit.
  void set_rca_online(bool online) noexcept { online_ = online; }

  struct TransactionRecord {
    net::NodeIndex requestor = net::kInvalidNode;
    net::NodeIndex provider = net::kInvalidNode;
    double estimate = 0.5;
    double truth_value = 0.0;
    bool answered = false;  ///< false when the RCA was down
    std::uint64_t trust_messages = 0;
  };
  TransactionRecord run_transaction();
  TransactionRecord run_transaction(net::NodeIndex requestor,
                                    net::NodeIndex provider);

  /// Timed query response (ms) under the queueing model; every concurrent
  /// requestor contends for the RCA's serial processing — the bottleneck.
  /// `concurrent` simultaneous queries are issued; returns the LAST
  /// completion.
  double timed_query_burst_ms(std::size_t concurrent);

  std::size_t reports_stored() const noexcept { return stores_.size(); }

 private:
  RcaOptions options_;
  util::Rng rng_;
  trust::GroundTruth truth_;
  net::Overlay overlay_;
  bool online_ = true;
  std::map<net::NodeIndex, std::unique_ptr<trust::TrustModel>> stores_;
  trust::TrustModelFactory model_factory_;
};

}  // namespace hirep::baselines
