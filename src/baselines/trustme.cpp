#include "baselines/trustme.hpp"

namespace hirep::baselines {

namespace {

trust::WorldParams world_with_nodes(trust::WorldParams world, std::size_t nodes) {
  world.nodes = nodes;
  return world;
}

}  // namespace

TrustMeSystem::TrustMeSystem(TrustMeOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      truth_(rng_, world_with_nodes(options_.world, options_.nodes)),
      overlay_(net::power_law(rng_, options_.nodes, options_.average_degree),
               options_.latency, options_.seed ^ 0x7157731eULL),
      transport_(&overlay_, options_.delivery, options_.seed ^ 0x7153131dULL),
      thas_(options_.nodes),
      model_factory_(trust::model_factory_by_name(options_.model)) {
  // Bootstrap-server THA assignment: random, so "the probability of each
  // peer to be a THA is similar" (§2).
  for (std::size_t peer = 0; peer < options_.nodes; ++peer) {
    auto picks = rng_.sample_indices(options_.nodes, options_.thas_per_peer + 1);
    for (std::size_t idx : picks) {
      if (thas_[peer].size() >= options_.thas_per_peer) break;
      if (idx == peer) continue;
      thas_[peer].push_back(static_cast<net::NodeIndex>(idx));
    }
  }
}

const std::vector<net::NodeIndex>& TrustMeSystem::thas_of(
    net::NodeIndex peer) const {
  return thas_.at(peer);
}

double TrustMeSystem::tha_answer(net::NodeIndex tha, net::NodeIndex subject) {
  // A malicious THA inverts whatever it would report.
  const auto it = stores_.find({tha, subject});
  double value;
  if (it != stores_.end() && it->second->observations() > 0) {
    value = it->second->value();
  } else {
    value = 0.5;  // no evidence yet
  }
  return truth_.poor_evaluator(tha) ? 1.0 - value : value;
}

TrustMeSystem::TransactionRecord TrustMeSystem::run_transaction() {
  const auto requestor = static_cast<net::NodeIndex>(rng_.below(options_.nodes));
  net::NodeIndex provider = requestor;
  while (provider == requestor) {
    provider = static_cast<net::NodeIndex>(rng_.below(options_.nodes));
  }
  return run_transaction(requestor, provider);
}

TrustMeSystem::TransactionRecord TrustMeSystem::run_transaction(
    net::NodeIndex requestor, net::NodeIndex provider) {
  TransactionRecord record;
  record.requestor = requestor;
  record.provider = provider;
  record.truth_value = truth_.true_trust(provider);
  const std::uint64_t before = overlay_.metrics().total();

  // Broadcast #1: the trust query floods the system; the provider's THAs
  // that heard it answer along the reverse path.
  const auto query_flood = net::flood(transport_, requestor, options_.ttl,
                                      net::EnvelopeType::kTrustRequest);
  const auto parent = query_flood.parents_by_node(overlay_.node_count());
  // All THA answers of one query ride back in a single envelope batch;
  // the answers themselves are read at tally time (tha_answer is a pure
  // read of the stores, which only change under broadcast #2 below).
  // Every answer targets the requestor, so the destination-sorted drain
  // degenerates to entry order and the float sum matches the sequential
  // form bit for bit.
  auto batch = transport_.make_batch();
  std::vector<net::NodeIndex> answering;
  std::vector<net::NodeIndex> reverse;
  for (std::size_t i = 0; i < query_flood.reached.size(); ++i) {
    const net::NodeIndex node = query_flood.reached[i];
    for (net::NodeIndex tha : thas_[provider]) {
      if (tha != node) continue;
      reverse.clear();
      reverse.reserve(query_flood.depth[i]);
      for (net::NodeIndex at = tha; at != requestor;) {
        const net::NodeIndex up = parent[at];
        reverse.push_back(up);
        at = up;
      }
      batch.push(net::EnvelopeType::kTrustResponse, tha, reverse);
      answering.push_back(tha);
    }
  }
  transport_.send_batch(batch);
  double sum = 0.0;
  // Single-destination drain (every answer lands at the requestor), so the
  // grouped visit degenerates to one group in entry order.
  batch.drain_groups(
      [](std::size_t, const net::DeliveryReceipt& r) {
        return static_cast<std::uint64_t>(r.destination);
      },
      [&](const net::ReceiptGroup& group) {
        for (const std::uint32_t i : group.entries) {
          // An answer lost on the way back never reaches the tally.
          sum += tha_answer(answering[i], provider);
          ++record.responses;
        }
      });
  record.estimate = record.responses
                        ? sum / static_cast<double>(record.responses)
                        : 0.5;

  // The transaction happens; broadcast #2 spreads the result the requestor
  // *claims* (identical to the observation unless an adversary engine
  // recruited the requestor as a ring member or front peer) so the
  // provider's THAs can store it.
  const double outcome = truth_.transaction_outcome(provider);
  const double reported = truth_.reported_outcome(requestor, provider, outcome);
  const auto report_flood = net::flood(transport_, requestor, options_.ttl,
                                       net::EnvelopeType::kReport);
  for (net::NodeIndex node : report_flood.reached) {
    for (net::NodeIndex tha : thas_[provider]) {
      if (tha != node) continue;
      auto key = std::make_pair(tha, provider);
      auto it = stores_.find(key);
      if (it == stores_.end()) {
        it = stores_.emplace(key, model_factory_()).first;
      }
      it->second->record(reported);
    }
  }

  record.trust_messages = overlay_.metrics().total() - before;
  return record;
}

void TrustMeSystem::reset_reputation(net::NodeIndex v) {
  for (auto it = stores_.begin(); it != stores_.end();) {
    it = it->first.second == v ? stores_.erase(it) : std::next(it);
  }
}

}  // namespace hirep::baselines
