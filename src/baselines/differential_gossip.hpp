// Differential-gossip baseline — reputation aggregation by push-sum gossip
// in the style of Gupta & Somani (arXiv:1210.4301): opinions about a
// subject circulate as (value, weight) mass pairs; each gossip step a
// holder keeps half its mass and pushes half to a random neighbor, and any
// node's local estimate is value/weight of the mass it currently holds.
// "Differential" refers to gossiping only where mass (i.e. new opinion
// evidence) actually sits, instead of flooding the whole network each
// round.
//
// Comparator role: a *decentralized, unauthenticated* aggregate.  Cheap in
// messages and naturally convergent, but opinions are anonymous mass — a
// bad-mouthing clique's falsified mass mixes in unweighted, and a
// whitewashed identity starts from zero mass (the neutral prior).
#pragma once

#include <cstdint>
#include <vector>

#include "net/overlay.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "trust/ground_truth.hpp"
#include "util/rng.hpp"

namespace hirep::baselines {

struct DifferentialGossipOptions {
  std::size_t nodes = 1000;
  double average_degree = 4.0;
  trust::WorldParams world;
  net::LatencyParams latency;
  net::DeliveryConfig delivery;
  std::uint64_t seed = 1;
  std::size_t gossip_rounds = 3;  ///< push-sum rounds run after each opinion
};

class DifferentialGossipSystem {
 public:
  explicit DifferentialGossipSystem(DifferentialGossipOptions options);

  net::Overlay& overlay() noexcept { return overlay_; }
  net::Transport& transport() noexcept { return transport_; }
  trust::GroundTruth& truth() noexcept { return truth_; }
  util::Rng& rng() noexcept { return rng_; }
  const DifferentialGossipOptions& options() const noexcept {
    return options_;
  }
  std::size_t node_count() const noexcept { return nodes_; }

  struct TransactionRecord {
    net::NodeIndex requestor = net::kInvalidNode;
    net::NodeIndex provider = net::kInvalidNode;
    double estimate = 0.5;     ///< requestor's push-sum estimate beforehand
    double truth_value = 0.0;
    std::uint64_t trust_messages = 0;
  };
  /// One transaction: the requestor reads its current push-sum estimate of
  /// the provider, transacts, injects its (possibly falsified) opinion as
  /// fresh mass, and the network runs `gossip_rounds` differential rounds
  /// for that subject (the counted message cost).
  TransactionRecord run_transaction(net::NodeIndex requestor,
                                    net::NodeIndex provider);

  /// `node`'s local estimate of `subject`: value/weight of held mass, or
  /// the neutral prior when it holds none.
  double estimate_at(net::NodeIndex node, net::NodeIndex subject) const;

  /// Whitewash surface: drop every circulating mass pair about v — a shed
  /// identity's history evaporates and estimates fall back to the prior.
  void reset_reputation(net::NodeIndex v);

  /// Sybil surface: a fresh identity joining at `degree` random points.
  net::NodeIndex add_node(std::size_t degree);

 private:
  /// One differential push-sum round for `subject`; lost pushes lose their
  /// mass (the realism the transport's delivery policy provides).
  void gossip_round(net::NodeIndex subject);

  DifferentialGossipOptions options_;
  util::Rng rng_;
  trust::GroundTruth truth_;
  net::Overlay overlay_;
  net::Transport transport_;
  std::size_t nodes_;
  /// Dense mass matrices: value_[holder * n + subject] / weight_[...].
  std::vector<double> value_;
  std::vector<double> weight_;
};

}  // namespace hirep::baselines
