// Absolute Trust baseline — the algebra-of-trust aggregation of Awasthi &
// Singh (arXiv:1601.01419): every peer holds direct opinions about the
// peers it has transacted with, and the network-wide ("absolute") trust of
// peer i is the fixed point of
//
//     t_i = sum_j T_ij * w_j / sum_j w_j     over the raters j of i,
//
// i.e. each rater's opinion weighted by the rater's own absolute trust —
// a peer whose community standing is low contributes little to anyone
// else's score.  We solve the fixed point with damped warm-started Jacobi
// iteration, recomputed lazily after new opinions arrive.
//
// Comparator role: a *global*, identity-keyed reputation aggregate.  It is
// robust to simple lying minorities (their weight collapses) but — unlike
// hiREP's §3.5 key-rotation protocol — a whitewashing peer that sheds its
// identity sheds its entire standing, and sybil identities join with the
// neutral prior.
#pragma once

#include <cstdint>
#include <vector>

#include "net/overlay.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "trust/ground_truth.hpp"
#include "util/rng.hpp"

namespace hirep::baselines {

struct AbsoluteTrustOptions {
  std::size_t nodes = 1000;
  double average_degree = 4.0;
  trust::WorldParams world;
  net::LatencyParams latency;
  net::DeliveryConfig delivery;
  std::uint64_t seed = 1;
  std::size_t max_iterations = 50;  ///< Jacobi iteration cap per recompute
  double epsilon = 1e-6;            ///< L-inf convergence threshold
  double min_weight = 0.05;         ///< floor on a rater's weight
};

class AbsoluteTrustSystem {
 public:
  explicit AbsoluteTrustSystem(AbsoluteTrustOptions options);

  net::Overlay& overlay() noexcept { return overlay_; }
  net::Transport& transport() noexcept { return transport_; }
  trust::GroundTruth& truth() noexcept { return truth_; }
  util::Rng& rng() noexcept { return rng_; }
  const AbsoluteTrustOptions& options() const noexcept { return options_; }
  std::size_t node_count() const noexcept { return global_.size(); }

  struct TransactionRecord {
    net::NodeIndex requestor = net::kInvalidNode;
    net::NodeIndex provider = net::kInvalidNode;
    double estimate = 0.5;     ///< absolute trust before this transaction
    double truth_value = 0.0;
    std::uint64_t trust_messages = 0;
  };
  /// One transaction: the requestor exchanges trust state with its
  /// neighbors (the counted message cost), reads the provider's absolute
  /// trust, transacts, and files its (possibly falsified) opinion.
  TransactionRecord run_transaction(net::NodeIndex requestor,
                                    net::NodeIndex provider);

  /// The provider's current absolute trust (fixed point recomputed lazily).
  double global_trust(net::NodeIndex v);

  /// Whitewash surface: forget every opinion *about* and *by* v and reset
  /// its score to the prior — what shedding an identity achieves in an
  /// identity-keyed store.
  void reset_reputation(net::NodeIndex v);

  /// Sybil surface: one fresh identity joining the overlay at `degree`
  /// random attachment points, with the neutral prior.
  net::NodeIndex add_node(std::size_t degree);

 private:
  void recompute();

  AbsoluteTrustOptions options_;
  util::Rng rng_;
  trust::GroundTruth truth_;
  net::Overlay overlay_;
  net::Transport transport_;
  /// Dense opinion matrix: opinion_sum_[rater * n + subject] with matching
  /// counts; T_ij is the rater's running average.
  std::vector<double> opinion_sum_;
  std::vector<std::uint32_t> opinion_cnt_;
  std::vector<double> global_;  ///< the fixed point, 0.5 prior
  bool dirty_ = false;
};

}  // namespace hirep::baselines
