#include "baselines/pure_voting.hpp"

#include <algorithm>

namespace hirep::baselines {

namespace {

trust::WorldParams world_with_nodes(trust::WorldParams world, std::size_t nodes) {
  world.nodes = nodes;
  return world;
}

}  // namespace

PureVotingSystem::PureVotingSystem(VotingOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      truth_(rng_, world_with_nodes(options_.world, options_.nodes)),
      overlay_(net::power_law(rng_, options_.nodes, options_.average_degree),
               options_.latency, options_.seed ^ 0x0ddba111ULL),
      transport_(&overlay_, options_.delivery, options_.seed ^ 0x90111e57ULL) {}

PureVotingSystem::PollResult PureVotingSystem::poll(net::NodeIndex requestor,
                                                    net::NodeIndex provider) {
  PollResult result;
  const std::uint64_t before = overlay_.metrics().total();
  const auto flood = net::flood(transport_, requestor, options_.ttl,
                                net::EnvelopeType::kVotePoll);
  const auto parent = flood.parents_by_node(overlay_.node_count());

  // Every vote of one poll rides back in a single envelope batch.  The
  // voter evaluates the candidate at enqueue time — the draw happens at
  // the voter, in reached order, regardless of whether its vote survives
  // the trip back — and the tally runs over the drained receipts.  All
  // returns target the requestor, so the destination-sorted drain
  // degenerates to entry order and the float sum matches the sequential
  // form bit for bit.
  auto batch = transport_.make_batch();
  std::vector<double> votes;
  std::vector<net::NodeIndex> reverse;
  for (std::size_t i = 0; i < flood.reached.size(); ++i) {
    const net::NodeIndex voter = flood.reached[i];
    if (voter == provider) continue;  // the candidate does not vote on itself
    votes.push_back(truth_.evaluate(voter, provider, rng_));
    // The vote travels back hop-by-hop along the reverse flooding path.
    reverse.clear();
    reverse.reserve(flood.depth[i]);
    for (net::NodeIndex at = voter; at != requestor;) {
      const net::NodeIndex up = parent[at];
      reverse.push_back(up);
      at = up;
    }
    batch.push(net::EnvelopeType::kVoteReturn, voter, reverse);
  }
  transport_.send_batch(batch);
  double sum = 0.0;
  // Single-destination drain (every vote lands at the requestor), so the
  // grouped visit degenerates to one group in entry order.
  batch.drain_groups(
      [](std::size_t, const net::DeliveryReceipt& r) {
        return static_cast<std::uint64_t>(r.destination);
      },
      [&](const net::ReceiptGroup& group) {
        for (const std::uint32_t i : group.entries) {
          // A lost vote never reaches the tally.
          sum += votes[i];
          ++result.votes;
        }
      });
  result.estimate = result.votes
                        ? sum / static_cast<double>(result.votes)
                        : 0.5;
  result.messages = overlay_.metrics().total() - before;
  return result;
}

PureVotingSystem::TimedPoll PureVotingSystem::poll_timed(
    net::NodeIndex requestor, net::NodeIndex provider) {
  TimedPoll result;
  overlay_.reset_time_state();
  const auto arrivals = net::timed_flood(overlay_, requestor, options_.ttl, 0.0,
                                         net::MessageKind::kTrustRequest);

  // Reconstruct reverse paths from the BFS-tree parents.
  std::vector<net::NodeIndex> parent(overlay_.node_count(), net::kInvalidNode);
  for (const auto& a : arrivals) parent[a.node] = a.parent;

  double sum = 0.0;
  double last = 0.0;
  for (const auto& a : arrivals) {
    if (a.node == provider) continue;
    sum += truth_.evaluate(a.node, provider, rng_);
    ++result.votes;
    // Vote returns hop-by-hop toward the requestor; each hop contends for
    // the receiving node's serial processing capacity.
    double t = a.time_ms;
    net::NodeIndex at = a.node;
    while (at != requestor) {
      const net::NodeIndex up = at == a.node ? a.parent : parent[at];
      t = overlay_.timed_send(t, at, up, net::MessageKind::kTrustResponse);
      at = up;
    }
    last = std::max(last, t);
  }
  result.estimate = result.votes ? sum / static_cast<double>(result.votes) : 0.5;
  result.response_ms = last;
  return result;
}

PureVotingSystem::TransactionRecord PureVotingSystem::run_transaction() {
  const auto requestor = static_cast<net::NodeIndex>(rng_.below(options_.nodes));
  net::NodeIndex provider = requestor;
  while (provider == requestor) {
    provider = static_cast<net::NodeIndex>(rng_.below(options_.nodes));
  }
  return run_transaction(requestor, provider);
}

PureVotingSystem::TransactionRecord PureVotingSystem::run_transaction(
    net::NodeIndex requestor, net::NodeIndex provider) {
  const auto polled = poll(requestor, provider);
  TransactionRecord record;
  record.requestor = requestor;
  record.provider = provider;
  record.estimate = polled.estimate;
  record.truth_value = truth_.true_trust(provider);
  record.votes = polled.votes;
  record.trust_messages = polled.messages;
  return record;
}

}  // namespace hirep::baselines
