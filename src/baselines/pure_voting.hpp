// Pure-voting (polling) baseline — the flooding mechanism of P2PREP
// [Cornelli et al., WWW'02] as the paper simulates it (§5.2): the trust
// requestor floods a poll with a TTL; *every* reached node computes a
// trust value of the candidate provider and returns its vote hop-by-hop
// along the reverse path; all votes are weighted equally.
//
// This is the comparator for Figures 5–8 ("voting-n" = average degree n).
#pragma once

#include <cstdint>

#include "net/flood.hpp"
#include "net/overlay.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "trust/ground_truth.hpp"
#include "util/rng.hpp"

namespace hirep::baselines {

struct VotingOptions {
  std::size_t nodes = 1000;
  double average_degree = 4.0;
  std::uint32_t ttl = 4;  ///< Table 1: TTL 4 ("network size limit"); real
                          ///< Gnutella deployments use 7
  trust::WorldParams world;
  net::LatencyParams latency;
  net::DeliveryConfig delivery;
  std::uint64_t seed = 1;
};

class PureVotingSystem {
 public:
  explicit PureVotingSystem(VotingOptions options);

  net::Overlay& overlay() noexcept { return overlay_; }
  net::Transport& transport() noexcept { return transport_; }
  trust::GroundTruth& truth() noexcept { return truth_; }
  util::Rng& rng() noexcept { return rng_; }
  const VotingOptions& options() const noexcept { return options_; }

  struct PollResult {
    double estimate = 0.5;
    std::size_t votes = 0;
    std::uint64_t messages = 0;  ///< poll flood + vote returns
  };
  /// Counted poll (Figures 5–7).
  PollResult poll(net::NodeIndex requestor, net::NodeIndex provider);

  struct TimedPoll {
    double estimate = 0.5;
    std::size_t votes = 0;
    /// When the requestor has handled the last vote (ms since poll start).
    double response_ms = 0.0;
  };
  /// Timed poll over the queueing model (Figure 8).  Resets per-node busy
  /// state first: each transaction is measured from a quiet network.
  TimedPoll poll_timed(net::NodeIndex requestor, net::NodeIndex provider);

  struct TransactionRecord {
    net::NodeIndex requestor = net::kInvalidNode;
    net::NodeIndex provider = net::kInvalidNode;
    double estimate = 0.5;
    double truth_value = 0.0;
    std::size_t votes = 0;
    std::uint64_t trust_messages = 0;
  };
  TransactionRecord run_transaction();
  TransactionRecord run_transaction(net::NodeIndex requestor,
                                    net::NodeIndex provider);

 private:
  VotingOptions options_;
  util::Rng rng_;
  trust::GroundTruth truth_;
  net::Overlay overlay_;
  net::Transport transport_;
};

}  // namespace hirep::baselines
