#include "baselines/rca.hpp"

#include <algorithm>

namespace hirep::baselines {

namespace {

trust::WorldParams world_with_nodes(trust::WorldParams world, std::size_t nodes) {
  world.nodes = nodes;
  return world;
}

}  // namespace

RcaSystem::RcaSystem(RcaOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      truth_(rng_, world_with_nodes(options_.world, options_.nodes)),
      overlay_(net::power_law(rng_, options_.nodes, options_.average_degree),
               options_.latency, options_.seed ^ 0x5ca1ab1eULL),
      model_factory_(trust::model_factory_by_name(options_.model)) {}

RcaSystem::TransactionRecord RcaSystem::run_transaction() {
  const auto requestor = static_cast<net::NodeIndex>(rng_.below(options_.nodes));
  net::NodeIndex provider = requestor;
  while (provider == requestor) {
    provider = static_cast<net::NodeIndex>(rng_.below(options_.nodes));
  }
  return run_transaction(requestor, provider);
}

RcaSystem::TransactionRecord RcaSystem::run_transaction(
    net::NodeIndex requestor, net::NodeIndex provider) {
  TransactionRecord record;
  record.requestor = requestor;
  record.provider = provider;
  record.truth_value = truth_.true_trust(provider);
  const std::uint64_t before = overlay_.metrics().total();

  if (online_) {
    // Query + response with the RCA: two point-to-point messages.
    overlay_.count_send(net::MessageKind::kTrustRequest);
    overlay_.count_send(net::MessageKind::kTrustResponse);
    const auto it = stores_.find(provider);
    record.estimate = (it != stores_.end() && it->second->observations() > 0)
                          ? it->second->value()
                          : 0.5;
    record.answered = true;
  }

  const double outcome = truth_.transaction_outcome(provider);
  if (online_) {
    // Signed report to the RCA: one message; the RCA's model updates.
    overlay_.count_send(net::MessageKind::kReport);
    auto it = stores_.find(provider);
    if (it == stores_.end()) {
      it = stores_.emplace(provider, model_factory_()).first;
    }
    it->second->record(outcome);
  }

  record.trust_messages = overlay_.metrics().total() - before;
  return record;
}

double RcaSystem::timed_query_burst_ms(std::size_t concurrent) {
  overlay_.reset_time_state();
  double last = 0.0;
  for (std::size_t i = 0; i < concurrent; ++i) {
    const auto requestor =
        static_cast<net::NodeIndex>(rng_.below(options_.nodes));
    if (requestor == options_.rca_node) continue;
    // Request into the RCA's serial queue...
    const double at_rca = overlay_.timed_send(0.0, requestor, options_.rca_node,
                                              net::MessageKind::kTrustRequest);
    // ...and the response back out.
    const double done = overlay_.timed_send(at_rca, options_.rca_node,
                                            requestor,
                                            net::MessageKind::kTrustResponse);
    last = std::max(last, done);
  }
  return last;
}

}  // namespace hirep::baselines
