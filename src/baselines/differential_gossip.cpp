#include "baselines/differential_gossip.hpp"

#include <algorithm>

namespace hirep::baselines {

namespace {

trust::WorldParams world_with_nodes(trust::WorldParams world,
                                    std::size_t nodes) {
  world.nodes = nodes;
  return world;
}

constexpr double kMinMass = 1e-9;  ///< below this a holder stops gossiping

}  // namespace

DifferentialGossipSystem::DifferentialGossipSystem(
    DifferentialGossipOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      truth_(rng_, world_with_nodes(options_.world, options_.nodes)),
      overlay_(net::power_law(rng_, options_.nodes, options_.average_degree),
               options_.latency, options_.seed ^ 0x0ddba111ULL),
      transport_(&overlay_, options_.delivery, options_.seed ^ 0x90111e57ULL),
      nodes_(options_.nodes),
      value_(options_.nodes * options_.nodes, 0.0),
      weight_(options_.nodes * options_.nodes, 0.0) {}

double DifferentialGossipSystem::estimate_at(net::NodeIndex node,
                                             net::NodeIndex subject) const {
  const double w = weight_.at(node * nodes_ + subject);
  return w > kMinMass ? value_[node * nodes_ + subject] / w : 0.5;
}

DifferentialGossipSystem::TransactionRecord
DifferentialGossipSystem::run_transaction(net::NodeIndex requestor,
                                          net::NodeIndex provider) {
  TransactionRecord record;
  record.requestor = requestor;
  record.provider = provider;
  record.estimate = estimate_at(requestor, provider);
  record.truth_value = truth_.true_trust(provider);
  const std::uint64_t before = overlay_.metrics().total();

  // Transact, then inject the claimed outcome as fresh opinion mass at the
  // requestor — recruited ring members / front peers falsify through
  // reported_outcome.
  const double outcome = truth_.transaction_outcome(provider);
  const double honest =
      truth_.poor_evaluator(requestor) ? 1.0 - outcome : outcome;
  const double opinion = truth_.reported_outcome(requestor, provider, honest);
  value_[requestor * nodes_ + provider] += opinion;
  weight_[requestor * nodes_ + provider] += 1.0;

  // Differential dissemination: only holders of mass about this subject
  // gossip, for a fixed number of rounds.
  for (std::size_t r = 0; r < options_.gossip_rounds; ++r) {
    gossip_round(provider);
  }
  record.trust_messages = overlay_.metrics().total() - before;
  return record;
}

void DifferentialGossipSystem::gossip_round(net::NodeIndex subject) {
  struct Push {
    net::NodeIndex to;
    double dv;
    double dw;
  };
  auto batch = transport_.make_batch();
  std::vector<Push> pending;
  for (std::size_t v = 0; v < nodes_; ++v) {
    if (weight_[v * nodes_ + subject] <= kMinMass) continue;
    const auto holder = static_cast<net::NodeIndex>(v);
    const auto nbs = overlay_.graph().neighbors(holder);
    if (nbs.empty()) continue;
    const net::NodeIndex to = nbs[rng_.below(nbs.size())];
    // Push-sum: keep half, push half.  The sender halves unconditionally —
    // a lost push loses its mass in flight.
    const double dv = value_[v * nodes_ + subject] * 0.5;
    const double dw = weight_[v * nodes_ + subject] * 0.5;
    value_[v * nodes_ + subject] -= dv;
    weight_[v * nodes_ + subject] -= dw;
    const net::NodeIndex hop[1] = {to};
    batch.push(net::EnvelopeType::kReport, holder, hop);
    pending.push_back(Push{to, dv, dw});
  }
  transport_.send_batch(batch);
  const auto receipts = batch.receipts();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!receipts[i].delivered) continue;
    value_[pending[i].to * nodes_ + subject] += pending[i].dv;
    weight_[pending[i].to * nodes_ + subject] += pending[i].dw;
  }
}

void DifferentialGossipSystem::reset_reputation(net::NodeIndex v) {
  for (std::size_t u = 0; u < nodes_; ++u) {
    value_[u * nodes_ + v] = 0.0;
    weight_[u * nodes_ + v] = 0.0;
  }
}

net::NodeIndex DifferentialGossipSystem::add_node(std::size_t degree) {
  const std::size_t n = nodes_;
  degree = std::max<std::size_t>(1, std::min(degree, n));
  std::vector<net::NodeIndex> attach;
  for (std::size_t idx : rng_.sample_indices(n, degree)) {
    attach.push_back(static_cast<net::NodeIndex>(idx));
  }
  const net::NodeIndex v = overlay_.add_node(attach);
  (void)truth_.add_node(rng_);
  const std::size_t m = n + 1;
  std::vector<double> value(m * m, 0.0);
  std::vector<double> weight(m * m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      value[i * m + j] = value_[i * n + j];
      weight[i * m + j] = weight_[i * n + j];
    }
  }
  value_.swap(value);
  weight_.swap(weight);
  nodes_ = m;
  return v;
}

}  // namespace hirep::baselines
