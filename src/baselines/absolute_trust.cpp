#include "baselines/absolute_trust.hpp"

#include <algorithm>
#include <cmath>

namespace hirep::baselines {

namespace {

trust::WorldParams world_with_nodes(trust::WorldParams world,
                                    std::size_t nodes) {
  world.nodes = nodes;
  return world;
}

}  // namespace

AbsoluteTrustSystem::AbsoluteTrustSystem(AbsoluteTrustOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      truth_(rng_, world_with_nodes(options_.world, options_.nodes)),
      overlay_(net::power_law(rng_, options_.nodes, options_.average_degree),
               options_.latency, options_.seed ^ 0x0ddba111ULL),
      transport_(&overlay_, options_.delivery, options_.seed ^ 0x90111e57ULL),
      opinion_sum_(options_.nodes * options_.nodes, 0.0),
      opinion_cnt_(options_.nodes * options_.nodes, 0),
      global_(options_.nodes, 0.5) {}

AbsoluteTrustSystem::TransactionRecord AbsoluteTrustSystem::run_transaction(
    net::NodeIndex requestor, net::NodeIndex provider) {
  TransactionRecord record;
  record.requestor = requestor;
  record.provider = provider;
  const std::uint64_t before = overlay_.metrics().total();

  // Trust-state exchange with the neighborhood: one request out to every
  // neighbor, one response back.  This is the per-transaction message cost
  // of keeping the distributed fixed point current.
  auto batch = transport_.make_batch();
  const net::NodeIndex hop[1] = {requestor};
  for (net::NodeIndex nb : overlay_.graph().neighbors(requestor)) {
    const net::NodeIndex out[1] = {nb};
    batch.push(net::EnvelopeType::kTrustRequest, requestor, out);
    batch.push(net::EnvelopeType::kTrustResponse, nb, hop);
  }
  transport_.send_batch(batch);

  record.estimate = global_trust(provider);
  record.truth_value = truth_.true_trust(provider);
  record.trust_messages = overlay_.metrics().total() - before;

  // Transact, then file the opinion the requestor *claims* — recruited
  // ring members / front peers falsify through reported_outcome.
  const double outcome = truth_.transaction_outcome(provider);
  const double honest =
      truth_.poor_evaluator(requestor) ? 1.0 - outcome : outcome;
  const double opinion = truth_.reported_outcome(requestor, provider, honest);
  const std::size_t n = global_.size();
  opinion_sum_[requestor * n + provider] += opinion;
  opinion_cnt_[requestor * n + provider] += 1;
  dirty_ = true;
  return record;
}

double AbsoluteTrustSystem::global_trust(net::NodeIndex v) {
  if (dirty_) recompute();
  return global_.at(v);
}

void AbsoluteTrustSystem::recompute() {
  dirty_ = false;
  const std::size_t n = global_.size();
  std::vector<double> next(n, 0.5);
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double num = 0.0;
      double den = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const std::uint32_t cnt = opinion_cnt_[j * n + i];
        if (cnt == 0) continue;
        const double t_ij =
            opinion_sum_[j * n + i] / static_cast<double>(cnt);
        const double w_j = std::max(global_[j], options_.min_weight);
        num += t_ij * w_j;
        den += w_j;
      }
      // Unrated peers keep the neutral prior; rated peers damp toward the
      // weighted opinion (warm-started from the previous fixed point).
      next[i] = den > 0.0 ? 0.5 * global_[i] + 0.5 * (num / den) : global_[i];
      delta = std::max(delta, std::abs(next[i] - global_[i]));
    }
    global_.swap(next);
    if (delta < options_.epsilon) break;
  }
}

void AbsoluteTrustSystem::reset_reputation(net::NodeIndex v) {
  const std::size_t n = global_.size();
  for (std::size_t j = 0; j < n; ++j) {
    opinion_sum_[j * n + v] = 0.0;
    opinion_cnt_[j * n + v] = 0;
    opinion_sum_[v * n + j] = 0.0;
    opinion_cnt_[v * n + j] = 0;
  }
  global_[v] = 0.5;
  dirty_ = true;
}

net::NodeIndex AbsoluteTrustSystem::add_node(std::size_t degree) {
  const std::size_t n = global_.size();
  degree = std::max<std::size_t>(1, std::min(degree, n));
  std::vector<net::NodeIndex> attach;
  for (std::size_t idx : rng_.sample_indices(n, degree)) {
    attach.push_back(static_cast<net::NodeIndex>(idx));
  }
  const net::NodeIndex v = overlay_.add_node(attach);
  (void)truth_.add_node(rng_);
  // Re-stride the dense opinion matrix for the grown population.
  const std::size_t m = n + 1;
  std::vector<double> sum(m * m, 0.0);
  std::vector<std::uint32_t> cnt(m * m, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sum[i * m + j] = opinion_sum_[i * n + j];
      cnt[i * m + j] = opinion_cnt_[i * n + j];
    }
  }
  opinion_sum_.swap(sum);
  opinion_cnt_.swap(cnt);
  global_.push_back(0.5);
  dirty_ = true;
  return v;
}

}  // namespace hirep::baselines
